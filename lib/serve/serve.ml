(* The multi-tenant service layer over Emma.Session.

   Two modes mirror the chaos layer's design:

   - [run_sim]: a deterministic discrete-event simulation. Queries are
     dispatched over [lanes] simulated service lanes (the max_inflight
     admission gate) by deficit round-robin over per-tenant queues;
     service time is the session's deterministic compile charge plus the
     engine's simulated cost. Every quantity that feeds a scheduling
     decision is simulated, so counters and the fingerprint replay
     bit-identically across runs and across domain counts.

   - [run_concurrent]: real concurrency — one host domain per tenant
     lane replaying that tenant's share of the trace over the shared
     work-stealing pool, gated by a counting semaphore when max_inflight
     is set. Wall-clock results; per-query values still match sim mode
     because the engine itself is deterministic. *)

module Session = Emma.Session
module Config = Emma.Config
module Metrics = Emma.Metrics
module Plan_cache = Emma.Plan_cache
module Cluster = Emma.Cluster
module Cancel = Emma.Cancel
module Expr = Emma.Expr
module Value = Emma.Value
module Json = Emma.Json
module Prng = Emma_util.Prng
module Wal = Emma_util.Wal
module Trace = Emma_util.Trace

type tenant = { tn_name : string; tn_weight : int; tn_mem_budget : float option }

let tenant ?(weight = 1) ?mem_budget name =
  if weight < 1 then invalid_arg "Serve.tenant: weight must be >= 1";
  { tn_name = name; tn_weight = weight; tn_mem_budget = mem_budget }

type workload = (string * (Expr.program * (string * Value.t list) list)) list

type query_result = {
  qr_sub : int;
  qr_tenant : string;
  qr_query : string;
  qr_arrival_s : float;
  qr_start_s : float;
  qr_finish_s : float;
  qr_service_s : float;
  qr_cache : Session.cache_status;
  qr_outcome : Session.outcome;
  qr_degrade : int;  (* degradation-ladder level the query ran at (0-3) *)
}

(* Why a query was shed instead of run. Shedding is always counted and
   reported per submission — no query ever disappears silently. *)
type shed_reason =
  | Shed_deadline  (* queue wait alone already exceeded the deadline *)
  | Shed_queue_full  (* per-tenant queue at max_queue; seeded victim pick *)
  | Shed_breaker  (* tenant circuit open: fast-fail without dispatch *)
  | Shed_drain  (* arrived after the drain point: admissions stopped *)
  | Shed_degraded  (* ladder level 3: would compile cold, cache-only mode *)

type shed_record = {
  sh_sub : int;
  sh_tenant : string;
  sh_query : string;
  sh_arrival_s : float;
  sh_at_s : float;  (* clock when the shed decision was taken *)
  sh_reason : shed_reason;
}

type tenant_counters = {
  tc_name : string;
  tc_weight : int;
  tc_admissions : int;
  tc_max_queue : int;
  tc_shed : int;
  tc_breaker_opens : int;
  tc_queue_wait_s : float;
  tc_service_s : float;
}

type counters = {
  sv_results : query_result list;  (* in submission-id order *)
  sv_shed : shed_record list;  (* in submission-id order *)
  sv_tenants : tenant_counters list;  (* in declaration order *)
  sv_cache : Plan_cache.stats option;
  sv_failed : int;
  sv_timed_out : int;
  sv_cancelled : int;
  sv_degraded : int;  (* admitted queries that ran at ladder level >= 1 *)
  sv_breaker_opens : int;
  sv_breaker_half_opens : int;
  sv_breaker_closes : int;
  sv_lanes : int;
  sv_makespan_s : float;
  sv_wall_s : float;  (* host seconds; excluded from the fingerprint *)
}

(* ------------------------------------------------------------------ *)
(* Overload-control policy                                              *)
(* ------------------------------------------------------------------ *)

(* All policy decisions are coordinator-side pure functions of the trace,
   the seed and the simulated clock — never of wall time, domain count or
   queue-arrival races — so a sim run's fingerprint replays
   bit-identically at any domain count. *)
type policy = {
  pl_seed : int;  (* seeds the queue-full victim picks *)
  pl_deadline_s : float option;  (* per-query latency budget (arrival → finish) *)
  pl_max_queue : int option;  (* per-tenant queue bound *)
  pl_breaker : Config.breaker_spec option;
  pl_drain_after_s : float option;  (* stop admissions past this clock *)
  pl_degrade_depth : int option;
      (* ladder step size D in total queued queries: level = depth / D,
         capped at 3. None = ladder off. *)
}

let no_policy =
  {
    pl_seed = 0;
    pl_deadline_s = None;
    pl_max_queue = None;
    pl_breaker = None;
    pl_drain_after_s = None;
    pl_degrade_depth = None;
  }

(* Derive the serve policy from a session Config: the four robustness
   knobs map across directly; the degradation ladder auto-engages when
   deadlines are on (it exists to protect deadlines — each rung trades
   per-query resources for queue drainage) with a step of 2x lanes of
   backlog per level. *)
let policy_of_config ?(seed = 0) ~lanes cfg =
  {
    pl_seed = seed;
    pl_deadline_s = cfg.Config.deadline_s;
    pl_max_queue = cfg.Config.max_queue;
    pl_breaker = cfg.Config.breaker;
    pl_drain_after_s = cfg.Config.drain_after_s;
    pl_degrade_depth =
      (match cfg.Config.deadline_s with
      | Some _ -> Some (2 * max 1 lanes)
      | None -> None);
  }

(* Per-tenant circuit breaker: Closed counts consecutive bad outcomes
   (Failed / Timed_out / Cancelled); at the threshold the circuit opens
   until a cool-down instant on the simulated clock; the first dispatch
   past it half-opens the circuit and probes with that single query. *)
type breaker_state = Br_closed of int | Br_open of float | Br_half_open

(* ------------------------------------------------------------------ *)
(* Shared plumbing                                                      *)
(* ------------------------------------------------------------------ *)

let validate tenants workload events =
  if tenants = [] then invalid_arg "Serve: at least one tenant is required";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun t ->
      if Hashtbl.mem seen t.tn_name then
        invalid_arg (Printf.sprintf "Serve: duplicate tenant %S" t.tn_name);
      Hashtbl.add seen t.tn_name ())
    tenants;
  List.iteri
    (fun i (e : Arrival.event) ->
      if not (List.exists (fun t -> t.tn_name = e.Arrival.tenant) tenants) then
        invalid_arg
          (Printf.sprintf "Serve: event %d names unknown tenant %S" i
             e.Arrival.tenant);
      if not (List.mem_assoc e.Arrival.query workload) then
        invalid_arg
          (Printf.sprintf "Serve: event %d names unknown query %S" i
             e.Arrival.query))
    events

(* Per-tenant engine config: the session config with the tenant's own
   memory budget (when set). The pool field is ignored by Session.run —
   the session pool always executes. *)
let tenant_config session tn =
  match tn.tn_mem_budget with
  | None -> None
  | Some b -> Some (Config.with_mem_budget (Some b) (Session.config session))

let lanes_of session tenants =
  match (Session.config session).Config.max_inflight with
  | Some k -> k
  | None -> List.length tenants

(* [max_queue] is the per-tenant deepest backlog, measured by both modes
   (sim: scheduler queues; concurrent: admission-gate waiters) — never a
   placeholder. [breaker_opens] maps tenant name -> opens. *)
let assemble ?(cache_base = (0, 0, 0)) ~lanes ~wall_s ~max_queue ~breaker_opens
    ~(breaker_totals : int * int * int) session tenants results sheds =
  let by_tenant name = List.filter (fun r -> r.qr_tenant = name) results in
  let count p = List.length (List.filter p results) in
  let sv_tenants =
    List.map
      (fun tn ->
        let rs = by_tenant tn.tn_name in
        {
          tc_name = tn.tn_name;
          tc_weight = tn.tn_weight;
          tc_admissions = List.length rs;
          tc_max_queue = max_queue tn.tn_name;
          tc_shed =
            List.length
              (List.filter (fun s -> s.sh_tenant = tn.tn_name) sheds);
          tc_breaker_opens = breaker_opens tn.tn_name;
          tc_queue_wait_s =
            List.fold_left (fun a r -> a +. (r.qr_start_s -. r.qr_arrival_s)) 0.0 rs;
          tc_service_s = List.fold_left (fun a r -> a +. r.qr_service_s) 0.0 rs;
        })
      tenants
  in
  let opens, half_opens, closes = breaker_totals in
  {
    sv_results = results;
    sv_shed = sheds;
    sv_tenants;
    sv_cache =
      (let bh, bm, be = cache_base in
       match Session.plan_cache_stats session with
       | Some s ->
           Some
             {
               s with
               Plan_cache.hits = s.Plan_cache.hits + bh;
               misses = s.Plan_cache.misses + bm;
               evictions = s.Plan_cache.evictions + be;
             }
       | None -> None);
    sv_failed =
      count (fun r ->
          match r.qr_outcome with Session.Failed _ -> true | _ -> false);
    sv_timed_out =
      count (fun r ->
          match r.qr_outcome with Session.Timed_out _ -> true | _ -> false);
    sv_cancelled =
      count (fun r ->
          match r.qr_outcome with Session.Cancelled _ -> true | _ -> false);
    sv_degraded = count (fun r -> r.qr_degrade > 0);
    sv_breaker_opens = opens;
    sv_breaker_half_opens = half_opens;
    sv_breaker_closes = closes;
    sv_lanes = lanes;
    sv_makespan_s = List.fold_left (fun a r -> max a r.qr_finish_s) 0.0 results;
    sv_wall_s = wall_s;
  }

(* ------------------------------------------------------------------ *)
(* Durability: journal records, snapshots and recovery                  *)
(* ------------------------------------------------------------------ *)

exception Recovery_error of string

type durability = { du_wal : Wal.t; du_snapshot_every : int option }

let cache_to_string = function
  | Session.Hit -> "hit"
  | Session.Miss -> "miss"
  | Session.Uncached -> "off"

let status_to_string = function
  | Session.Finished _ -> "finished"
  | Session.Failed _ -> "failed"
  | Session.Timed_out _ -> "timed_out"
  | Session.Cancelled _ -> "cancelled"

let shed_reason_to_string = function
  | Shed_deadline -> "deadline"
  | Shed_queue_full -> "queue_full"
  | Shed_breaker -> "breaker"
  | Shed_drain -> "drain"
  | Shed_degraded -> "degraded"

let cache_of_string = function
  | "hit" -> Session.Hit
  | "miss" -> Session.Miss
  | "off" -> Session.Uncached
  | s -> raise (Recovery_error (Printf.sprintf "journal: unknown cache status %S" s))

let shed_reason_of_string = function
  | "deadline" -> Shed_deadline
  | "queue_full" -> Shed_queue_full
  | "breaker" -> Shed_breaker
  | "drain" -> Shed_drain
  | "degraded" -> Shed_degraded
  | s -> raise (Recovery_error (Printf.sprintf "journal: unknown shed reason %S" s))

(* Floats are journaled as lossless hex floats; the pinned %.6f decimal
   rendering exists only at fingerprint time, so a value that round-trips
   through the journal is bit-identical to the live one. *)
let fhex = Printf.sprintf "%h"

let fval s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> raise (Recovery_error (Printf.sprintf "journal: bad float %S" s))

(* key=value access over a space-split record payload. Fixed fields come
   before the free-form [reason=] tail, so first match wins even when the
   reason itself contains k=v-shaped words. *)
let fields_of payload = String.split_on_char ' ' payload

let field name fs =
  let prefix = name ^ "=" in
  match List.find_opt (String.starts_with ~prefix) fs with
  | Some kv ->
      String.sub kv (String.length prefix) (String.length kv - String.length prefix)
  | None ->
      raise (Recovery_error (Printf.sprintf "journal: record lacks %s= field" name))

let int_field name fs =
  match int_of_string_opt (field name fs) with
  | Some i -> i
  | None ->
      raise (Recovery_error (Printf.sprintf "journal: bad integer in %s= field" name))

(* The free-form reason is always the final field and may contain spaces:
   everything after the first " reason=" is the reason verbatim. *)
let reason_field payload =
  let marker = " reason=" in
  let ml = String.length marker in
  let n = String.length payload in
  let rec find i =
    if i + ml > n then
      raise (Recovery_error (Printf.sprintf "journal: record lacks reason= field: %S" payload))
    else if String.sub payload i ml = marker then String.sub payload (i + ml) (n - i - ml)
    else find (i + 1)
  in
  find 0

let encode_meta ~n ~lanes ~seed ~quantum_s tenants workload =
  Printf.sprintf "meta v=1 n=%d lanes=%d seed=%d quantum=%s tenants=%s queries=%s"
    n lanes seed (fhex quantum_s)
    (String.concat ","
       (List.map (fun t -> Printf.sprintf "%s:%d" t.tn_name t.tn_weight) tenants))
    (String.concat "," (List.map fst workload))

let encode_arrival sub (ev : Arrival.event) =
  Printf.sprintf "arrival sub=%d at=%s tenant=%s query=%s" sub
    (fhex ev.Arrival.at_s) ev.Arrival.tenant ev.Arrival.query

let encode_shed s =
  Printf.sprintf "shed sub=%d at=%s reason=%s" s.sh_sub (fhex s.sh_at_s)
    (shed_reason_to_string s.sh_reason)

let encode_dispatch sub ~start ~level =
  Printf.sprintf "dispatch sub=%d start=%s level=%d" sub (fhex start) level

let encode_outcome ~evictions (r : query_result) =
  let at, reason =
    match r.qr_outcome with
    | Session.Finished _ -> (0.0, "")
    | Session.Failed { reason; _ } -> (0.0, reason)
    | Session.Timed_out { at_s; _ } -> (at_s, "")
    | Session.Cancelled { at_s; reason; _ } -> (at_s, reason)
  in
  Printf.sprintf
    "outcome sub=%d status=%s cache=%s degrade=%d evictions=%d service=%s \
     start=%s finish=%s at=%s reason=%s"
    r.qr_sub
    (status_to_string r.qr_outcome)
    (cache_to_string r.qr_cache)
    r.qr_degrade evictions (fhex r.qr_service_s) (fhex r.qr_start_s)
    (fhex r.qr_finish_s) (fhex at) reason

(* A journaled outcome, as replay sees it. *)
type jout = {
  jo_sub : int;
  jo_status : string;
  jo_cache : string;
  jo_degrade : int;
  jo_evictions : int;
  jo_service : float;
  jo_start : float;
  jo_finish : float;
  jo_at : float;
  jo_reason : string;
}

let decode_outcome payload =
  let fs = fields_of payload in
  {
    jo_sub = int_field "sub" fs;
    jo_status = field "status" fs;
    jo_cache = field "cache" fs;
    jo_degrade = int_field "degrade" fs;
    jo_evictions = int_field "evictions" fs;
    jo_service = fval (field "service" fs);
    jo_start = fval (field "start" fs);
    jo_finish = fval (field "finish" fs);
    jo_at = fval (field "at" fs);
    jo_reason = reason_field payload;
  }

(* Status-faithful placeholder for an outcome rebuilt from the journal:
   the constructor, times and cache classification are exact (they feed
   the fingerprint); the value/ctx and engine metrics of the original run
   are not re-materialised — [recovery_replayed] marks the outcome so
   consumers can tell. The query is NOT re-executed: that is the
   exactly-once half of recovery. *)
let replayed_outcome jo =
  let m = Metrics.create () in
  m.Metrics.recovery_replayed <- 1;
  (match jo.jo_cache with
  | "hit" -> m.Metrics.plan_cache_hits <- 1
  | "miss" -> m.Metrics.plan_cache_misses <- 1
  | _ -> ());
  m.Metrics.plan_cache_evictions <- jo.jo_evictions;
  match jo.jo_status with
  | "finished" ->
      Session.Finished { Session.value = Value.Unit; metrics = m; ctx = Session.make_ctx [] }
  | "failed" -> Session.Failed { reason = jo.jo_reason; metrics = m }
  | "timed_out" -> Session.Timed_out { at_s = jo.jo_at; metrics = m }
  | "cancelled" ->
      Session.Cancelled { at_s = jo.jo_at; reason = jo.jo_reason; metrics = m }
  | s -> raise (Recovery_error (Printf.sprintf "journal: unknown outcome status %S" s))

(* Journal cursor: the re-simulation regenerates the record stream from
   the top; records before [j_first] were compacted away (nothing to
   check), records inside the retained journal are VERIFIED against it
   (a mismatch means the journal belongs to a different configuration or
   trace), and records past the end are appended. A recovered run
   therefore converges on exactly the journal an uninterrupted run would
   have written — which is what lets repeated crashes compose. *)
type jctx = {
  j_wal : Wal.t;
  j_existing : string array;
  j_first : int;
  mutable j_idx : int; (* global index of the next record to regenerate *)
  j_snap_every : int option;
  mutable j_outcomes : int; (* outcome records seen, replayed or live *)
}

let jwrite j payload =
  let i = j.j_idx in
  j.j_idx <- i + 1;
  if i < j.j_first then ()
  else if i - j.j_first < Array.length j.j_existing then begin
    let old = j.j_existing.(i - j.j_first) in
    if not (String.equal old payload) then
      raise
        (Recovery_error
           (Printf.sprintf
              "journal record %d does not match this serve configuration \
               (journaled %S, regenerated %S): recover with the flags and \
               trace of the original run"
              i old payload))
  end
  else ignore (Wal.append j.j_wal payload)

(* Is the cursor past the retained journal (i.e. writing fresh records)? *)
let j_live j = j.j_idx > j.j_first + Array.length j.j_existing

(* ------------------------------------------------------------------ *)
(* Deterministic sim mode                                               *)
(* ------------------------------------------------------------------ *)

let sim ?(quantum_s = 1.0) ?policy ?durability ~recovering session tenants
    workload events =
  validate tenants workload events;
  if not (quantum_s > 0.0) then
    invalid_arg "Serve.run_sim: quantum must be > 0";
  let wall0 = Unix.gettimeofday () in
  let evs = Array.of_list events in
  let n = Array.length evs in
  let nt = List.length tenants in
  let tarr = Array.of_list tenants in
  let tindex =
    let tbl = Hashtbl.create nt in
    Array.iteri (fun i t -> Hashtbl.replace tbl t.tn_name i) tarr;
    fun name -> Hashtbl.find tbl name
  in
  let lanes = max 1 (lanes_of session tenants) in
  let pol =
    match policy with
    | Some p -> p
    | None -> policy_of_config ~lanes (Session.config session)
  in
  (match pol.pl_max_queue with
  | Some k when k < 1 -> invalid_arg "Serve: max_queue must be >= 1"
  | _ -> ());
  (* submission order sorted by arrival time, sub id breaking ties *)
  let order = Array.init n Fun.id in
  Array.stable_sort
    (fun i j -> compare evs.(i).Arrival.at_s evs.(j).Arrival.at_s)
    order;
  let lane_free = Array.make lanes 0.0 in
  let queues = Array.init nt (fun _ -> Queue.create ()) in
  let deficit = Array.make nt 0.0 in
  let max_queue = Array.make nt 0 in
  let breaker = Array.make nt (Br_closed 0) in
  let breaker_opens = Array.make nt 0 in
  let br_half_opens = ref 0 in
  let br_closes = ref 0 in
  let results = Array.make n None in
  let sheds = ref [] in
  let next = ref 0 in
  let accounted = ref 0 in
  let rr = ref 0 in
  (* --- durability state ------------------------------------------- *)
  let jctx =
    match durability with
    | None -> None
    | Some { du_wal; du_snapshot_every } ->
        Some
          {
            j_wal = du_wal;
            j_existing = Wal.records du_wal;
            j_first = Wal.first_seq du_wal;
            j_idx = 0;
            j_snap_every = du_snapshot_every;
            j_outcomes = 0;
          }
  in
  (* Outcomes already in the journal, by submission id: replay uses them
     instead of re-executing (exactly-once). A journaled dispatch with no
     outcome — the query in flight at the crash — is absent here, so the
     re-simulation re-submits it idempotently at its original point. *)
  let memo = Hashtbl.create 64 in
  (match jctx with
  | Some j when recovering ->
      Array.iter
        (fun payload ->
          if String.starts_with ~prefix:"outcome " payload then
            let jo = decode_outcome payload in
            Hashtbl.replace memo jo.jo_sub jo)
        j.j_existing
  | _ -> ());
  (* Counted cache stats recovered from the journal/snapshot; reported
     totals = this base + the live session's own counts. *)
  let cache_base = ref (0, 0, 0) in
  let add_base (h, mi, e) =
    let bh, bm, be = !cache_base in
    cache_base := (bh + h, bm + mi, be + e)
  in
  let evict_of = Array.make (max 1 n) 0 in
  let replayed = ref 0 in
  let resubmitted = ref 0 in
  let snapshot_used = ref None in
  let tracer =
    match (Session.config session).Config.trace with
    | Some tr -> tr
    | None -> Trace.global ()
  in
  let shed ~at_s ~reason sub =
    let ev = evs.(sub) in
    let rec_ =
      {
        sh_sub = sub;
        sh_tenant = ev.Arrival.tenant;
        sh_query = ev.Arrival.query;
        sh_arrival_s = ev.Arrival.at_s;
        sh_at_s = at_s;
        sh_reason = reason;
      }
    in
    sheds := rec_ :: !sheds;
    (match jctx with Some j -> jwrite j (encode_shed rec_) | None -> ());
    incr accounted
  in
  (* Admission: drain cutoff and the bounded queue apply at arrival time.
     A full queue picks its victim — the arriving query or the oldest
     queued one — by a seeded hash of the arriving sub id, so the choice
     is a pure function of (seed, trace), never of scheduling order. *)
  let enqueue_until t =
    while !next < n && evs.(order.(!next)).Arrival.at_s <= t do
      let sub = order.(!next) in
      let at_s = evs.(sub).Arrival.at_s in
      let ti = tindex evs.(sub).Arrival.tenant in
      incr next;
      let drained =
        match pol.pl_drain_after_s with
        | Some d when at_s > d ->
            shed ~at_s ~reason:Shed_drain sub;
            true
        | _ -> false
      in
      if not drained then begin
        (match pol.pl_max_queue with
        | Some k when Queue.length queues.(ti) >= k ->
            if Prng.hash_int ~seed:pol.pl_seed [ sub ] 2 = 0 then
              (* drop the arriving query *)
              shed ~at_s ~reason:Shed_queue_full sub
            else begin
              (* drop the oldest queued one to admit the fresh arrival *)
              shed ~at_s ~reason:Shed_queue_full (Queue.pop queues.(ti));
              Queue.add sub queues.(ti)
            end
        | _ -> Queue.add sub queues.(ti));
        max_queue.(ti) <- max max_queue.(ti) (Queue.length queues.(ti))
      end
    done
  in
  let queues_empty () = Array.for_all Queue.is_empty queues in
  let total_depth () =
    Array.fold_left (fun a q -> a + Queue.length q) 0 queues
  in
  (* Degradation ladder: one level per [pl_degrade_depth] queries of total
     backlog, capped at 3. Level 1 halves the execution slice (dop),
     level 2 also disables speculative copies, level 3 additionally
     admits only plan-cache hits (cold compiles are shed). *)
  let degrade_level () =
    match pol.pl_degrade_depth with
    | None -> 0
    | Some d -> min 3 (total_depth () / max 1 d)
  in
  let halve_cluster (c : Cluster.t) =
    if c.Cluster.slots_per_node > 1 then
      { c with Cluster.slots_per_node = max 1 (c.Cluster.slots_per_node / 2) }
    else { c with Cluster.nodes = max 1 (c.Cluster.nodes / 2) }
  in
  (* Deficit round-robin, post-paid: visit tenants in a fixed rotation;
     an empty queue forfeits its deficit, a backlogged tenant earns
     quantum x weight per visit and runs once its balance is positive
     (the actual simulated service cost is debited after the run). Every
     backlogged tenant's balance grows every full rotation, so no tenant
     starves; the rotation order and the sub-id queue order make the
     pick a pure function of the trace. *)
  let drr_pick () =
    let rec go () =
      let i = !rr in
      rr := (!rr + 1) mod nt;
      if Queue.is_empty queues.(i) then begin
        deficit.(i) <- 0.0;
        go ()
      end
      else begin
        deficit.(i) <-
          deficit.(i) +. (quantum_s *. float_of_int tarr.(i).tn_weight);
        if deficit.(i) > 0.0 then i else go ()
      end
    in
    go ()
  in
  let record_breaker_outcome ti ~finish outcome =
    let bad =
      match outcome with
      | Session.Finished _ -> false
      | Session.Failed _ | Session.Timed_out _ | Session.Cancelled _ -> true
    in
    match pol.pl_breaker with
    | None -> ()
    | Some { Config.br_threshold; br_cooldown_s } -> (
        match breaker.(ti) with
        | Br_closed k ->
            if bad then
              if k + 1 >= br_threshold then begin
                breaker.(ti) <- Br_open (finish +. br_cooldown_s);
                breaker_opens.(ti) <- breaker_opens.(ti) + 1
              end
              else breaker.(ti) <- Br_closed (k + 1)
            else if k > 0 then breaker.(ti) <- Br_closed 0
        | Br_half_open ->
            if bad then begin
              breaker.(ti) <- Br_open (finish +. br_cooldown_s);
              breaker_opens.(ti) <- breaker_opens.(ti) + 1
            end
            else begin
              breaker.(ti) <- Br_closed 0;
              incr br_closes
            end
        | Br_open _ ->
            (* unreachable: open circuits never dispatch *)
            ())
  in
  (* --- snapshots ---------------------------------------------------- *)
  let result_of_jout jo =
    if jo.jo_sub < 0 || jo.jo_sub >= n then
      raise (Recovery_error (Printf.sprintf "journal: sub %d out of range" jo.jo_sub));
    let ev = evs.(jo.jo_sub) in
    evict_of.(jo.jo_sub) <- jo.jo_evictions;
    {
      qr_sub = jo.jo_sub;
      qr_tenant = ev.Arrival.tenant;
      qr_query = ev.Arrival.query;
      qr_arrival_s = ev.Arrival.at_s;
      qr_start_s = jo.jo_start;
      qr_finish_s = jo.jo_finish;
      qr_service_s = jo.jo_service;
      qr_cache = cache_of_string jo.jo_cache;
      qr_outcome = replayed_outcome jo;
      qr_degrade = jo.jo_degrade;
    }
  in
  let shed_of_payload payload =
    let fs = fields_of payload in
    let sub = int_field "sub" fs in
    if sub < 0 || sub >= n then
      raise (Recovery_error (Printf.sprintf "journal: shed sub %d out of range" sub));
    let ev = evs.(sub) in
    {
      sh_sub = sub;
      sh_tenant = ev.Arrival.tenant;
      sh_query = ev.Arrival.query;
      sh_arrival_s = ev.Arrival.at_s;
      sh_at_s = fval (field "at" fs);
      sh_reason = shed_reason_of_string (field "reason" fs);
    }
  in
  (* Full scheduler state at a record boundary: restoring it and then
     replaying only the journal suffix reproduces the exact state a
     full-journal replay would reach — snapshots are purely a recovery-
     time optimisation, never a semantic input. Cache contents are
     persisted as LRU-ordered query names; re-priming them rebuilds both
     the population and the recency order. *)
  let snapshot_payload j covers =
    let b = Buffer.create 1024 in
    let live =
      match Session.plan_cache_stats session with
      | Some s -> s
      | None -> { Plan_cache.hits = 0; misses = 0; evictions = 0; entries = 0 }
    in
    let bh, bm, be = !cache_base in
    Buffer.add_string b
      (Printf.sprintf
         "snapshot v=1 covers=%d next=%d accounted=%d rr=%d half_opens=%d \
          closes=%d outcomes=%d hits=%d misses=%d evictions=%d\n"
         covers !next !accounted !rr !br_half_opens !br_closes j.j_outcomes
         (bh + live.Plan_cache.hits)
         (bm + live.Plan_cache.misses)
         (be + live.Plan_cache.evictions));
    let fline tag a =
      Buffer.add_string b
        (tag ^ String.concat "" (List.map (fun v -> " " ^ fhex v) (Array.to_list a)) ^ "\n")
    in
    let iline tag a =
      Buffer.add_string b
        (tag
        ^ String.concat "" (List.map (fun v -> " " ^ string_of_int v) (Array.to_list a))
        ^ "\n")
    in
    fline "lanes" lane_free;
    fline "deficit" deficit;
    iline "maxq" max_queue;
    iline "bropens" breaker_opens;
    Array.iteri
      (fun ti q ->
        Buffer.add_string b (Printf.sprintf "queue %d" ti);
        Queue.iter (fun sub -> Buffer.add_string b (Printf.sprintf " %d" sub)) q;
        Buffer.add_char b '\n')
      queues;
    Array.iteri
      (fun ti st ->
        Buffer.add_string b
          (match st with
          | Br_closed k -> Printf.sprintf "breaker %d closed %d\n" ti k
          | Br_open until -> Printf.sprintf "breaker %d open %s\n" ti (fhex until)
          | Br_half_open -> Printf.sprintf "breaker %d half\n" ti))
      breaker;
    let key2name =
      List.map
        (fun (name, (prog, tables)) -> (Session.plan_key prog ~tables, name))
        workload
    in
    Buffer.add_string b "lru";
    List.iter
      (fun key ->
        match List.assoc_opt key key2name with
        | Some name -> Buffer.add_string b (" " ^ name)
        | None ->
            raise (Recovery_error "snapshot: cached plan not in the workload"))
      (Session.plan_cache_keys session);
    Buffer.add_char b '\n';
    Array.iter
      (function
        | Some r ->
            Buffer.add_string b
              ("result " ^ encode_outcome ~evictions:evict_of.(r.qr_sub) r ^ "\n")
        | None -> ())
      results;
    List.iter
      (fun s -> Buffer.add_string b ("shedrec " ^ encode_shed s ^ "\n"))
      (List.rev !sheds);
    Buffer.contents b
  in
  let restore_snapshot j covers payload =
    let header, rest =
      match String.split_on_char '\n' payload with
      | h :: r -> (h, r)
      | [] -> raise (Recovery_error "snapshot: empty")
    in
    let fs = fields_of header in
    if field "v" fs <> "1" then raise (Recovery_error "snapshot: unknown version");
    if int_field "covers" fs <> covers then
      raise (Recovery_error "snapshot: covers mismatch");
    next := int_field "next" fs;
    accounted := int_field "accounted" fs;
    rr := int_field "rr" fs;
    br_half_opens := int_field "half_opens" fs;
    br_closes := int_field "closes" fs;
    j.j_outcomes <- int_field "outcomes" fs;
    cache_base := (int_field "hits" fs, int_field "misses" fs, int_field "evictions" fs);
    let iv s =
      match int_of_string_opt s with
      | Some i -> i
      | None -> raise (Recovery_error (Printf.sprintf "snapshot: bad integer %S" s))
    in
    let fill_floats dst vs what =
      let a = Array.of_list (List.map fval vs) in
      if Array.length a <> Array.length dst then
        raise
          (Recovery_error
             (Printf.sprintf
                "snapshot: %s count mismatch — was the journal written with a \
                 different configuration?"
                what));
      Array.blit a 0 dst 0 (Array.length dst)
    in
    let fill_ints dst vs what =
      let a = Array.of_list (List.map iv vs) in
      if Array.length a <> Array.length dst then
        raise (Recovery_error (Printf.sprintf "snapshot: %s count mismatch" what));
      Array.blit a 0 dst 0 (Array.length dst)
    in
    List.iter
      (fun line ->
        if line <> "" then
          match String.split_on_char ' ' line with
          | "lanes" :: vs -> fill_floats lane_free vs "lane"
          | "deficit" :: vs -> fill_floats deficit vs "tenant"
          | "maxq" :: vs -> fill_ints max_queue vs "tenant"
          | "bropens" :: vs -> fill_ints breaker_opens vs "tenant"
          | "queue" :: ti :: subs ->
              let ti = iv ti in
              if ti < 0 || ti >= nt then
                raise (Recovery_error "snapshot: tenant index out of range");
              Queue.clear queues.(ti);
              List.iter (fun s -> Queue.add (iv s) queues.(ti)) subs
          | "breaker" :: ti :: st ->
              let ti = iv ti in
              if ti < 0 || ti >= nt then
                raise (Recovery_error "snapshot: tenant index out of range");
              breaker.(ti) <-
                (match st with
                | [ "closed"; k ] -> Br_closed (iv k)
                | [ "open"; u ] -> Br_open (fval u)
                | [ "half" ] -> Br_half_open
                | _ -> raise (Recovery_error "snapshot: bad breaker state"))
          | "lru" :: names ->
              List.iter
                (fun name ->
                  match List.assoc_opt name workload with
                  | Some (prog, tables) -> Session.prime session prog ~tables
                  | None ->
                      raise
                        (Recovery_error
                           (Printf.sprintf "snapshot: unknown query %S" name)))
                names
          | "result" :: _ ->
              let jo =
                decode_outcome (String.sub line 7 (String.length line - 7))
              in
              incr replayed;
              results.(jo.jo_sub) <- Some (result_of_jout jo)
          | "shedrec" :: _ ->
              sheds :=
                shed_of_payload (String.sub line 8 (String.length line - 8))
                :: !sheds
          | _ -> raise (Recovery_error (Printf.sprintf "snapshot: bad line %S" line)))
      rest;
    j.j_idx <- covers
  in
  (* --- recovery bootstrap ------------------------------------------ *)
  (match jctx with
  | Some j when recovering -> (
      match Wal.load_snapshot j.j_wal with
      | Some (covers, payload) ->
          restore_snapshot j covers payload;
          snapshot_used := Some covers
      | None -> ())
  | _ -> ());
  (* Regenerate (and verify, or append) the preamble unless a snapshot
     skipped the cursor past it. Snapshots are only ever written after
     outcome records, which follow the full preamble, so the cursor is
     either 0 or past the preamble entirely. *)
  (match jctx with
  | Some j when j.j_idx = 0 ->
      jwrite j
        (encode_meta ~n ~lanes ~seed:pol.pl_seed ~quantum_s tenants workload);
      Array.iteri (fun sub ev -> jwrite j (encode_arrival sub ev)) evs
  | _ -> ());
  (match jctx with
  | Some j when recovering && Trace.enabled tracer ->
      Trace.instant tracer ~cat:"recovery"
        ~args:
          [
            ("journal_records", Trace.A_int (Array.length j.j_existing));
            ("first_seq", Trace.A_int j.j_first);
            ( "snapshot",
              match !snapshot_used with
              | Some c -> Trace.A_int c
              | None -> Trace.A_str "none" );
          ]
        "recovery_start"
  | _ -> ());
  while !accounted < n do
    (* earliest-free lane; lowest index breaks ties *)
    let lane = ref 0 in
    Array.iteri (fun i t -> if t < lane_free.(!lane) then lane := i) lane_free;
    let now = lane_free.(!lane) in
    enqueue_until now;
    if queues_empty () then begin
      (* idle: advance this lane to the next arrival. When the tail of
         the trace was just shed at enqueue time there is no next
         arrival — the loop condition has the final word. *)
      if !next < n then
        let t_next = evs.(order.(!next)).Arrival.at_s in
        lane_free.(!lane) <- max now t_next
    end
    else begin
      let ti = drr_pick () in
      (* circuit state at dispatch time: open fast-fails the queue head
         without occupying a lane; past the cool-down the first pick
         half-opens and probes with that single query *)
      let circuit_open =
        match breaker.(ti) with
        | Br_open until when now < until -> true
        | Br_open _ ->
            breaker.(ti) <- Br_half_open;
            incr br_half_opens;
            false
        | _ -> false
      in
      if circuit_open then
        shed ~at_s:now ~reason:Shed_breaker (Queue.pop queues.(ti))
      else begin
        let sub = Queue.pop queues.(ti) in
        let ev = evs.(sub) in
        let wait = now -. ev.Arrival.at_s in
        let dead_on_dispatch =
          match pol.pl_deadline_s with Some d -> wait >= d | None -> false
        in
        if dead_on_dispatch then
          (* queue wait alone consumed the budget: shed instead of
             burning a lane on a query that can only miss. Sheds never
             ran, so they are not breaker outcomes. *)
          shed ~at_s:now ~reason:Shed_deadline sub
        else begin
          let level = degrade_level () in
          let prog, tables = List.assoc ev.Arrival.query workload in
          if level >= 3 && not (Session.would_hit session prog ~tables) then
            (* ladder level 3: plan-cache-only fast path — queries that
               would compile cold are shed to keep the hit path alive *)
            shed ~at_s:now ~reason:Shed_degraded sub
          else begin
            let ws0 =
              match jctx with Some j -> Some (Wal.stats j.j_wal) | None -> None
            in
            let dispatch_live =
              match jctx with
              | Some j ->
                  let live = j_live j || j.j_idx = j.j_first + Array.length j.j_existing in
                  jwrite j (encode_dispatch sub ~start:now ~level);
                  live
              | None -> true
            in
            let memo_jo = if recovering then Hashtbl.find_opt memo sub else None in
            let outcome, service, cache_status, evictions =
              match memo_jo with
              | Some jo ->
                  (* exactly-once: the journal already holds this query's
                     outcome — warm the plan cache exactly as the original
                     probe/store did (stats-neutral; the counted stats ride
                     [cache_base]) and rebuild the result without
                     re-executing *)
                  incr replayed;
                  (match jo.jo_cache with
                  | "hit" | "miss" -> Session.prime session prog ~tables
                  | _ -> ());
                  add_base
                    ( (if jo.jo_cache = "hit" then 1 else 0),
                      (if jo.jo_cache = "miss" then 1 else 0),
                      jo.jo_evictions );
                  ( replayed_outcome jo,
                    jo.jo_service,
                    cache_of_string jo.jo_cache,
                    jo.jo_evictions )
              | None ->
                  (* live execution — either a normal run, or the query
                     that was admitted but unfinished at the crash, now
                     re-submitted idempotently under its original sub id *)
                  if recovering && not dispatch_live then incr resubmitted;
                  let config =
                    let base =
                      match tenant_config session tarr.(ti) with
                      | Some c -> c
                      | None -> Session.config session
                    in
                    (* remaining per-query budget: the deadline is
                       end-to-end (arrival -> finish), so the engine gets
                       what the queue wait left over *)
                    let base =
                      match pol.pl_deadline_s with
                      | Some d -> Config.with_deadline_s (Some (d -. wait)) base
                      | None -> base
                    in
                    Some base
                  in
                  (* level 1 halves the execution slice; level 2
                     additionally turns speculative straggler copies off *)
                  let cluster =
                    if level < 1 then None
                    else
                      let c =
                        halve_cluster (Session.runtime session).Session.cluster
                      in
                      Some
                        (if level < 2 then c
                         else
                           {
                             c with
                             Cluster.recovery =
                               {
                                 c.Cluster.recovery with
                                 Cluster.speculate = false;
                               };
                           })
                  in
                  let outcome, info =
                    Session.submit ?config ?cluster session prog ~tables
                  in
                  let m = Session.metrics_of_outcome outcome in
                  let service = info.Session.si_compile_s +. m.Metrics.sim_time_s in
                  (outcome, service, info.Session.si_cache, info.Session.si_evictions)
            in
            deficit.(ti) <- deficit.(ti) -. service;
            let start = now in
            let finish = start +. service in
            lane_free.(!lane) <- finish;
            record_breaker_outcome ti ~finish outcome;
            evict_of.(sub) <- evictions;
            let r =
              {
                qr_sub = sub;
                qr_tenant = ev.Arrival.tenant;
                qr_query = ev.Arrival.query;
                qr_arrival_s = ev.Arrival.at_s;
                qr_start_s = start;
                qr_finish_s = finish;
                qr_service_s = service;
                qr_cache = cache_status;
                qr_outcome = outcome;
                qr_degrade = level;
              }
            in
            results.(sub) <- Some r;
            incr accounted;
            (match jctx with
            | Some j ->
                jwrite j (encode_outcome ~evictions r);
                j.j_outcomes <- j.j_outcomes + 1;
                (match j.j_snap_every with
                | Some k when j.j_outcomes mod k = 0 && j_live j ->
                    Wal.write_snapshot j.j_wal ~covers:j.j_idx
                      (snapshot_payload j j.j_idx)
                | _ -> ());
                let m = Session.metrics_of_outcome outcome in
                (match ws0 with
                | Some s0 ->
                    let s1 = Wal.stats j.j_wal in
                    m.Metrics.wal_appends <-
                      m.Metrics.wal_appends + s1.Wal.wa_appends - s0.Wal.wa_appends;
                    m.Metrics.wal_bytes <-
                      m.Metrics.wal_bytes
                      +. float_of_int (s1.Wal.wa_bytes - s0.Wal.wa_bytes);
                    m.Metrics.wal_fsyncs <-
                      m.Metrics.wal_fsyncs + s1.Wal.wa_fsyncs - s0.Wal.wa_fsyncs
                | None -> ())
            | None -> ())
          end
        end
      end
    end
  done;
  let results =
    Array.to_list results |> List.filter_map Fun.id
  in
  let sheds = List.sort (fun a b -> compare a.sh_sub b.sh_sub) !sheds in
  (match jctx with
  | Some j when recovering ->
      Wal.sync j.j_wal;
      if Trace.enabled tracer then
        Trace.instant tracer ~cat:"recovery"
          ~args:
            [
              ("replayed", Trace.A_int !replayed);
              ("resubmitted", Trace.A_int !resubmitted);
              ("journal_next", Trace.A_int j.j_idx);
            ]
          "recovery_done"
  | Some j -> Wal.sync j.j_wal
  | None -> ());
  assemble ~cache_base:!cache_base ~lanes
    ~wall_s:(Unix.gettimeofday () -. wall0)
    ~max_queue:(fun name -> max_queue.(tindex name))
    ~breaker_opens:(fun name -> breaker_opens.(tindex name))
    ~breaker_totals:
      (Array.fold_left ( + ) 0 breaker_opens, !br_half_opens, !br_closes)
    session tenants results sheds

let run_sim ?quantum_s ?policy ?durability session tenants workload events =
  sim ?quantum_s ?policy ?durability ~recovering:false session tenants workload
    events

let recover_sim ?quantum_s ?policy ~durability session tenants workload events =
  sim ?quantum_s ?policy ~durability ~recovering:true session tenants workload
    events

(* ------------------------------------------------------------------ *)
(* Real concurrent mode                                                 *)
(* ------------------------------------------------------------------ *)

(* Counting semaphore: the max_inflight admission gate of the real mode. *)
type sem = { s_lock : Mutex.t; s_cond : Condition.t; mutable s_avail : int }

let sem_create n = { s_lock = Mutex.create (); s_cond = Condition.create (); s_avail = n }

let sem_acquire s =
  Mutex.lock s.s_lock;
  while s.s_avail <= 0 do
    Condition.wait s.s_cond s.s_lock
  done;
  s.s_avail <- s.s_avail - 1;
  Mutex.unlock s.s_lock

let sem_release s =
  Mutex.lock s.s_lock;
  s.s_avail <- s.s_avail + 1;
  Condition.signal s.s_cond;
  Mutex.unlock s.s_lock

(* Graceful drain: a controller shared between the serving domains and
   whoever pulls the plug. [drain] stops admissions (lanes shed their
   remaining trace as [Shed_drain]) and requests the shared cancel token,
   so in-flight queries stop at their next engine safepoint with a
   classified [Cancelled] outcome instead of being abandoned. *)
type drain_ctl = { dr_flag : bool Atomic.t; dr_cancel : Cancel.t }

let drain_controller () =
  { dr_flag = Atomic.make false; dr_cancel = Cancel.create () }

let drain d =
  Atomic.set d.dr_flag true;
  Cancel.request ~reason:"drain" d.dr_cancel

let draining d = Atomic.get d.dr_flag

let run_concurrent ?drain:dctl session tenants workload events =
  validate tenants workload events;
  let lanes = max 1 (lanes_of session tenants) in
  let cfg = Session.config session in
  let sem =
    match cfg.Config.max_inflight with
    | Some k -> Some (sem_create k)
    | None -> None
  in
  let cancel = Option.map (fun d -> d.dr_cancel) dctl in
  let numbered = List.mapi (fun i e -> (i, e)) events in
  let tnames = List.map (fun t -> t.tn_name) tenants in
  (* Real (measured) per-tenant backlog: lane threads blocked on the
     admission gate, sampled under one lock — never a placeholder. With
     the one-domain-per-tenant replayer each tenant contributes at most
     one waiter, so this bounds at 1 per tenant and 0 when the gate is
     uncontended; it is the concurrent analogue of the sim scheduler's
     queue depth. *)
  let wait_lock = Mutex.create () in
  let waiting = Hashtbl.create 8 in
  let max_waiting = Hashtbl.create 8 in
  List.iter
    (fun n ->
      Hashtbl.replace waiting n 0;
      Hashtbl.replace max_waiting n 0)
    tnames;
  let note_wait name delta =
    Mutex.lock wait_lock;
    let c = Hashtbl.find waiting name + delta in
    Hashtbl.replace waiting name c;
    if c > Hashtbl.find max_waiting name then Hashtbl.replace max_waiting name c;
    Mutex.unlock wait_lock
  in
  let wall0 = Unix.gettimeofday () in
  (* one domain per tenant lane, replaying that tenant's submissions in
     trace order as fast as admission allows (closed loop — arrival
     times order the lane but are not waited out, so the measured
     throughput is the sustained maximum, not the offered rate) *)
  let run_lane tn =
    let mine =
      List.filter (fun (_, e) -> e.Arrival.tenant = tn.tn_name) numbered
    in
    let config = tenant_config session tn in
    List.map
      (fun (sub, (ev : Arrival.event)) ->
        let now () = Unix.gettimeofday () -. wall0 in
        let mk_shed reason at_s =
          Either.Right
            {
              sh_sub = sub;
              sh_tenant = ev.Arrival.tenant;
              sh_query = ev.Arrival.query;
              sh_arrival_s = at_s;
              sh_at_s = at_s;
              sh_reason = reason;
            }
        in
        if (match dctl with Some d -> draining d | None -> false) then
          (* admissions stopped: the rest of this lane's trace is shed,
             counted, and reported — never silently dropped *)
          mk_shed Shed_drain (now ())
        else begin
          (* closed loop: "arrival" is when this lane starts waiting for
             admission, so latency = admission wait + service, never the
             scripted sim time (which is on a different clock) *)
          let arrival = now () in
          note_wait tn.tn_name 1;
          (match sem with Some s -> sem_acquire s | None -> ());
          note_wait tn.tn_name (-1);
          let start = now () in
          let wait = start -. arrival in
          let dead =
            match cfg.Config.deadline_s with
            | Some d -> wait >= d
            | None -> false
          in
          if dead then begin
            (match sem with Some s -> sem_release s | None -> ());
            mk_shed Shed_deadline start
          end
          else begin
            let prog, tables = List.assoc ev.Arrival.query workload in
            let outcome, info =
              Fun.protect
                ~finally:(fun () ->
                  match sem with Some s -> sem_release s | None -> ())
                (fun () ->
                  Session.submit ?config ?cancel session prog ~tables)
            in
            let finish = now () in
            Either.Left
              {
                qr_sub = sub;
                qr_tenant = ev.Arrival.tenant;
                qr_query = ev.Arrival.query;
                qr_arrival_s = arrival;
                qr_start_s = start;
                qr_finish_s = finish;
                qr_service_s = finish -. start;
                qr_cache = info.Session.si_cache;
                qr_outcome = outcome;
                qr_degrade = 0;
              }
          end
        end)
      mine
  in
  let domains =
    List.map (fun tn -> Domain.spawn (fun () -> run_lane tn)) tenants
  in
  let results, sheds =
    List.concat_map Domain.join domains |> List.partition_map Fun.id
  in
  let results = List.sort (fun a b -> compare a.qr_sub b.qr_sub) results in
  let sheds = List.sort (fun a b -> compare a.sh_sub b.sh_sub) sheds in
  assemble ~lanes
    ~wall_s:(Unix.gettimeofday () -. wall0)
    ~max_queue:(fun name -> Hashtbl.find max_waiting name)
    ~breaker_opens:(fun _ -> 0)
    ~breaker_totals:(0, 0, 0) session tenants results sheds

(* ------------------------------------------------------------------ *)
(* Reporting                                                            *)
(* ------------------------------------------------------------------ *)

(* The replay identity of a sim run: every scheduling, queueing and cache
   quantity, rendered with the repo's pinned float format. Host wall time
   is deliberately absent, so the fingerprint is bit-identical across 20
   replays and across 1/2/4/8 domains. *)
let fingerprint c =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "lanes=%d failed=%d timed_out=%d cancelled=%d shed=%d degraded=%d \
        breaker=%d/%d/%d makespan=%.6f\n"
       c.sv_lanes c.sv_failed c.sv_timed_out c.sv_cancelled
       (List.length c.sv_shed) c.sv_degraded c.sv_breaker_opens
       c.sv_breaker_half_opens c.sv_breaker_closes c.sv_makespan_s);
  (match c.sv_cache with
  | None -> Buffer.add_string b "cache=off\n"
  | Some s ->
      Buffer.add_string b
        (Printf.sprintf "cache hits=%d misses=%d evictions=%d entries=%d\n"
           s.Plan_cache.hits s.Plan_cache.misses s.Plan_cache.evictions
           s.Plan_cache.entries));
  List.iter
    (fun tc ->
      Buffer.add_string b
        (Printf.sprintf
           "tenant=%s weight=%d admissions=%d max_queue=%d shed=%d \
            breaker_opens=%d wait=%.6f service=%.6f\n"
           tc.tc_name tc.tc_weight tc.tc_admissions tc.tc_max_queue tc.tc_shed
           tc.tc_breaker_opens tc.tc_queue_wait_s tc.tc_service_s))
    c.sv_tenants;
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf
           "sub=%d tenant=%s query=%s arr=%.6f start=%.6f finish=%.6f \
            cache=%s status=%s degrade=%d\n"
           r.qr_sub r.qr_tenant r.qr_query r.qr_arrival_s r.qr_start_s
           r.qr_finish_s (cache_to_string r.qr_cache)
           (status_to_string r.qr_outcome) r.qr_degrade))
    c.sv_results;
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "shed sub=%d tenant=%s query=%s arr=%.6f at=%.6f \
                         reason=%s\n"
           s.sh_sub s.sh_tenant s.sh_query s.sh_arrival_s s.sh_at_s
           (shed_reason_to_string s.sh_reason)))
    c.sv_shed;
  Buffer.contents b

let latencies c =
  let a =
    Array.of_list
      (List.map (fun r -> r.qr_finish_s -. r.qr_arrival_s) c.sv_results)
  in
  Array.sort compare a;
  a

(* Nearest-rank percentile on a sorted array; deterministic. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let counters_to_json c =
  let lat = latencies c in
  Json.Obj
    [
      ("queries", Json.Int (List.length c.sv_results));
      ("lanes", Json.Int c.sv_lanes);
      ("failed", Json.Int c.sv_failed);
      ("timed_out", Json.Int c.sv_timed_out);
      ("cancelled", Json.Int c.sv_cancelled);
      ("shed", Json.Int (List.length c.sv_shed));
      ( "shed_by_reason",
        Json.Obj
          (List.map
             (fun reason ->
               ( shed_reason_to_string reason,
                 Json.Int
                   (List.length
                      (List.filter (fun s -> s.sh_reason = reason) c.sv_shed))
               ))
             [
               Shed_deadline;
               Shed_queue_full;
               Shed_breaker;
               Shed_drain;
               Shed_degraded;
             ]) );
      ("degraded", Json.Int c.sv_degraded);
      ( "breaker",
        Json.Obj
          [
            ("opens", Json.Int c.sv_breaker_opens);
            ("half_opens", Json.Int c.sv_breaker_half_opens);
            ("closes", Json.Int c.sv_breaker_closes);
          ] );
      ("makespan_s", Json.Float c.sv_makespan_s);
      ("wall_s", Json.Float c.sv_wall_s);
      ("latency_p50_s", Json.Float (percentile lat 0.50));
      ("latency_p99_s", Json.Float (percentile lat 0.99));
      ( "cache",
        match c.sv_cache with
        | None -> Json.Null
        | Some s ->
            Json.Obj
              [
                ("hits", Json.Int s.Plan_cache.hits);
                ("misses", Json.Int s.Plan_cache.misses);
                ("evictions", Json.Int s.Plan_cache.evictions);
                ("entries", Json.Int s.Plan_cache.entries);
              ] );
      ( "tenants",
        Json.List
          (List.map
             (fun tc ->
               Json.Obj
                 [
                   ("name", Json.Str tc.tc_name);
                   ("weight", Json.Int tc.tc_weight);
                   ("admissions", Json.Int tc.tc_admissions);
                   ("max_queue", Json.Int tc.tc_max_queue);
                   ("shed", Json.Int tc.tc_shed);
                   ("breaker_opens", Json.Int tc.tc_breaker_opens);
                   ("queue_wait_s", Json.Float tc.tc_queue_wait_s);
                   ("service_s", Json.Float tc.tc_service_s);
                 ])
             c.sv_tenants) );
    ]
