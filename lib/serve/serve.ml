(* The multi-tenant service layer over Emma.Session.

   Two modes mirror the chaos layer's design:

   - [run_sim]: a deterministic discrete-event simulation. Queries are
     dispatched over [lanes] simulated service lanes (the max_inflight
     admission gate) by deficit round-robin over per-tenant queues;
     service time is the session's deterministic compile charge plus the
     engine's simulated cost. Every quantity that feeds a scheduling
     decision is simulated, so counters and the fingerprint replay
     bit-identically across runs and across domain counts.

   - [run_concurrent]: real concurrency — one host domain per tenant
     lane replaying that tenant's share of the trace over the shared
     work-stealing pool, gated by a counting semaphore when max_inflight
     is set. Wall-clock results; per-query values still match sim mode
     because the engine itself is deterministic. *)

module Session = Emma.Session
module Config = Emma.Config
module Metrics = Emma.Metrics
module Plan_cache = Emma.Plan_cache
module Expr = Emma.Expr
module Value = Emma.Value
module Json = Emma.Json

type tenant = { tn_name : string; tn_weight : int; tn_mem_budget : float option }

let tenant ?(weight = 1) ?mem_budget name =
  if weight < 1 then invalid_arg "Serve.tenant: weight must be >= 1";
  { tn_name = name; tn_weight = weight; tn_mem_budget = mem_budget }

type workload = (string * (Expr.program * (string * Value.t list) list)) list

type query_result = {
  qr_sub : int;
  qr_tenant : string;
  qr_query : string;
  qr_arrival_s : float;
  qr_start_s : float;
  qr_finish_s : float;
  qr_service_s : float;
  qr_cache : Session.cache_status;
  qr_outcome : Session.outcome;
}

type tenant_counters = {
  tc_name : string;
  tc_weight : int;
  tc_admissions : int;
  tc_max_queue : int;
  tc_queue_wait_s : float;
  tc_service_s : float;
}

type counters = {
  sv_results : query_result list;  (* in submission-id order *)
  sv_tenants : tenant_counters list;  (* in declaration order *)
  sv_cache : Plan_cache.stats option;
  sv_failed : int;
  sv_timed_out : int;
  sv_lanes : int;
  sv_makespan_s : float;
  sv_wall_s : float;  (* host seconds; excluded from the fingerprint *)
}

(* ------------------------------------------------------------------ *)
(* Shared plumbing                                                      *)
(* ------------------------------------------------------------------ *)

let validate tenants workload events =
  if tenants = [] then invalid_arg "Serve: at least one tenant is required";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun t ->
      if Hashtbl.mem seen t.tn_name then
        invalid_arg (Printf.sprintf "Serve: duplicate tenant %S" t.tn_name);
      Hashtbl.add seen t.tn_name ())
    tenants;
  List.iteri
    (fun i (e : Arrival.event) ->
      if not (List.exists (fun t -> t.tn_name = e.Arrival.tenant) tenants) then
        invalid_arg
          (Printf.sprintf "Serve: event %d names unknown tenant %S" i
             e.Arrival.tenant);
      if not (List.mem_assoc e.Arrival.query workload) then
        invalid_arg
          (Printf.sprintf "Serve: event %d names unknown query %S" i
             e.Arrival.query))
    events

(* Per-tenant engine config: the session config with the tenant's own
   memory budget (when set). The pool field is ignored by Session.run —
   the session pool always executes. *)
let tenant_config session tn =
  match tn.tn_mem_budget with
  | None -> None
  | Some b -> Some (Config.with_mem_budget (Some b) (Session.config session))

let lanes_of session tenants =
  match (Session.config session).Config.max_inflight with
  | Some k -> k
  | None -> List.length tenants

let assemble ~lanes ~wall_s session tenants results =
  let by_tenant name =
    List.filter (fun r -> r.qr_tenant = name) results
  in
  let sv_tenants =
    List.map
      (fun tn ->
        let rs = by_tenant tn.tn_name in
        {
          tc_name = tn.tn_name;
          tc_weight = tn.tn_weight;
          tc_admissions = List.length rs;
          tc_max_queue = 0;  (* overridden by run_sim *)
          tc_queue_wait_s =
            List.fold_left (fun a r -> a +. (r.qr_start_s -. r.qr_arrival_s)) 0.0 rs;
          tc_service_s = List.fold_left (fun a r -> a +. r.qr_service_s) 0.0 rs;
        })
      tenants
  in
  {
    sv_results = results;
    sv_tenants;
    sv_cache = Session.plan_cache_stats session;
    sv_failed =
      List.length
        (List.filter
           (fun r -> match r.qr_outcome with Session.Failed _ -> true | _ -> false)
           results);
    sv_timed_out =
      List.length
        (List.filter
           (fun r ->
             match r.qr_outcome with Session.Timed_out _ -> true | _ -> false)
           results);
    sv_lanes = lanes;
    sv_makespan_s = List.fold_left (fun a r -> max a r.qr_finish_s) 0.0 results;
    sv_wall_s = wall_s;
  }

(* ------------------------------------------------------------------ *)
(* Deterministic sim mode                                               *)
(* ------------------------------------------------------------------ *)

let run_sim ?(quantum_s = 1.0) session tenants workload events =
  validate tenants workload events;
  if not (quantum_s > 0.0) then
    invalid_arg "Serve.run_sim: quantum must be > 0";
  let wall0 = Unix.gettimeofday () in
  let evs = Array.of_list events in
  let n = Array.length evs in
  let nt = List.length tenants in
  let tarr = Array.of_list tenants in
  let tindex =
    let tbl = Hashtbl.create nt in
    Array.iteri (fun i t -> Hashtbl.replace tbl t.tn_name i) tarr;
    fun name -> Hashtbl.find tbl name
  in
  (* submission order sorted by arrival time, sub id breaking ties *)
  let order = Array.init n Fun.id in
  Array.stable_sort
    (fun i j -> compare evs.(i).Arrival.at_s evs.(j).Arrival.at_s)
    order;
  let lanes = max 1 (lanes_of session tenants) in
  let lane_free = Array.make lanes 0.0 in
  let queues = Array.init nt (fun _ -> Queue.create ()) in
  let deficit = Array.make nt 0.0 in
  let max_queue = Array.make nt 0 in
  let results = Array.make n None in
  let next = ref 0 in
  let completed = ref 0 in
  let rr = ref 0 in
  let enqueue_until t =
    while !next < n && evs.(order.(!next)).Arrival.at_s <= t do
      let sub = order.(!next) in
      let ti = tindex evs.(sub).Arrival.tenant in
      Queue.add sub queues.(ti);
      max_queue.(ti) <- max max_queue.(ti) (Queue.length queues.(ti));
      incr next
    done
  in
  let queues_empty () =
    Array.for_all Queue.is_empty queues
  in
  (* Deficit round-robin, post-paid: visit tenants in a fixed rotation;
     an empty queue forfeits its deficit, a backlogged tenant earns
     quantum x weight per visit and runs once its balance is positive
     (the actual simulated service cost is debited after the run). Every
     backlogged tenant's balance grows every full rotation, so no tenant
     starves; the rotation order and the sub-id queue order make the
     pick a pure function of the trace. *)
  let drr_pick () =
    let rec go () =
      let i = !rr in
      rr := (!rr + 1) mod nt;
      if Queue.is_empty queues.(i) then begin
        deficit.(i) <- 0.0;
        go ()
      end
      else begin
        deficit.(i) <-
          deficit.(i) +. (quantum_s *. float_of_int tarr.(i).tn_weight);
        if deficit.(i) > 0.0 then i else go ()
      end
    in
    go ()
  in
  while !completed < n do
    (* earliest-free lane; lowest index breaks ties *)
    let lane = ref 0 in
    Array.iteri (fun i t -> if t < lane_free.(!lane) then lane := i) lane_free;
    let now = lane_free.(!lane) in
    enqueue_until now;
    if queues_empty () then begin
      (* idle: advance this lane to the next arrival *)
      let t_next = evs.(order.(!next)).Arrival.at_s in
      lane_free.(!lane) <- max now t_next
    end
    else begin
      let ti = drr_pick () in
      let sub = Queue.pop queues.(ti) in
      let ev = evs.(sub) in
      let prog, tables = List.assoc ev.Arrival.query workload in
      let config = tenant_config session tarr.(ti) in
      let outcome, info = Session.submit ?config session prog ~tables in
      let m = Session.metrics_of_outcome outcome in
      let service = info.Session.si_compile_s +. m.Metrics.sim_time_s in
      deficit.(ti) <- deficit.(ti) -. service;
      let start = now in
      let finish = start +. service in
      lane_free.(!lane) <- finish;
      results.(sub) <-
        Some
          {
            qr_sub = sub;
            qr_tenant = ev.Arrival.tenant;
            qr_query = ev.Arrival.query;
            qr_arrival_s = ev.Arrival.at_s;
            qr_start_s = start;
            qr_finish_s = finish;
            qr_service_s = service;
            qr_cache = info.Session.si_cache;
            qr_outcome = outcome;
          };
      incr completed
    end
  done;
  let results =
    Array.to_list results
    |> List.map (function Some r -> r | None -> assert false)
  in
  let c =
    assemble ~lanes ~wall_s:(Unix.gettimeofday () -. wall0) session tenants
      results
  in
  {
    c with
    sv_tenants =
      List.map
        (fun tc -> { tc with tc_max_queue = max_queue.(tindex tc.tc_name) })
        c.sv_tenants;
  }

(* ------------------------------------------------------------------ *)
(* Real concurrent mode                                                 *)
(* ------------------------------------------------------------------ *)

(* Counting semaphore: the max_inflight admission gate of the real mode. *)
type sem = { s_lock : Mutex.t; s_cond : Condition.t; mutable s_avail : int }

let sem_create n = { s_lock = Mutex.create (); s_cond = Condition.create (); s_avail = n }

let sem_acquire s =
  Mutex.lock s.s_lock;
  while s.s_avail <= 0 do
    Condition.wait s.s_cond s.s_lock
  done;
  s.s_avail <- s.s_avail - 1;
  Mutex.unlock s.s_lock

let sem_release s =
  Mutex.lock s.s_lock;
  s.s_avail <- s.s_avail + 1;
  Condition.signal s.s_cond;
  Mutex.unlock s.s_lock

let run_concurrent session tenants workload events =
  validate tenants workload events;
  let lanes = max 1 (lanes_of session tenants) in
  let sem =
    match (Session.config session).Config.max_inflight with
    | Some k -> Some (sem_create k)
    | None -> None
  in
  let numbered = List.mapi (fun i e -> (i, e)) events in
  let wall0 = Unix.gettimeofday () in
  (* one domain per tenant lane, replaying that tenant's submissions in
     trace order as fast as admission allows (closed loop — arrival
     times order the lane but are not waited out, so the measured
     throughput is the sustained maximum, not the offered rate) *)
  let run_lane tn =
    let mine =
      List.filter (fun (_, e) -> e.Arrival.tenant = tn.tn_name) numbered
    in
    let config = tenant_config session tn in
    List.map
      (fun (sub, (ev : Arrival.event)) ->
        (* closed loop: "arrival" is when this lane starts waiting for
           admission, so latency = admission wait + service, never the
           scripted sim time (which is on a different clock) *)
        let arrival = Unix.gettimeofday () -. wall0 in
        (match sem with Some s -> sem_acquire s | None -> ());
        let start = Unix.gettimeofday () -. wall0 in
        let prog, tables = List.assoc ev.Arrival.query workload in
        let outcome, info =
          Fun.protect
            ~finally:(fun () ->
              match sem with Some s -> sem_release s | None -> ())
            (fun () -> Session.submit ?config session prog ~tables)
        in
        let finish = Unix.gettimeofday () -. wall0 in
        {
          qr_sub = sub;
          qr_tenant = ev.Arrival.tenant;
          qr_query = ev.Arrival.query;
          qr_arrival_s = arrival;
          qr_start_s = start;
          qr_finish_s = finish;
          qr_service_s = finish -. start;
          qr_cache = info.Session.si_cache;
          qr_outcome = outcome;
        })
      mine
  in
  let domains =
    List.map (fun tn -> Domain.spawn (fun () -> run_lane tn)) tenants
  in
  let results =
    List.concat_map Domain.join domains
    |> List.sort (fun a b -> compare a.qr_sub b.qr_sub)
  in
  assemble ~lanes ~wall_s:(Unix.gettimeofday () -. wall0) session tenants
    results

(* ------------------------------------------------------------------ *)
(* Reporting                                                            *)
(* ------------------------------------------------------------------ *)

let cache_to_string = function
  | Session.Hit -> "hit"
  | Session.Miss -> "miss"
  | Session.Uncached -> "off"

let status_to_string = function
  | Session.Finished _ -> "finished"
  | Session.Failed _ -> "failed"
  | Session.Timed_out _ -> "timed_out"

(* The replay identity of a sim run: every scheduling, queueing and cache
   quantity, rendered with the repo's pinned float format. Host wall time
   is deliberately absent, so the fingerprint is bit-identical across 20
   replays and across 1/2/4/8 domains. *)
let fingerprint c =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "lanes=%d failed=%d timed_out=%d makespan=%.6f\n" c.sv_lanes
       c.sv_failed c.sv_timed_out c.sv_makespan_s);
  (match c.sv_cache with
  | None -> Buffer.add_string b "cache=off\n"
  | Some s ->
      Buffer.add_string b
        (Printf.sprintf "cache hits=%d misses=%d evictions=%d entries=%d\n"
           s.Plan_cache.hits s.Plan_cache.misses s.Plan_cache.evictions
           s.Plan_cache.entries));
  List.iter
    (fun tc ->
      Buffer.add_string b
        (Printf.sprintf
           "tenant=%s weight=%d admissions=%d max_queue=%d wait=%.6f \
            service=%.6f\n"
           tc.tc_name tc.tc_weight tc.tc_admissions tc.tc_max_queue
           tc.tc_queue_wait_s tc.tc_service_s))
    c.sv_tenants;
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf
           "sub=%d tenant=%s query=%s arr=%.6f start=%.6f finish=%.6f \
            cache=%s status=%s\n"
           r.qr_sub r.qr_tenant r.qr_query r.qr_arrival_s r.qr_start_s
           r.qr_finish_s (cache_to_string r.qr_cache)
           (status_to_string r.qr_outcome)))
    c.sv_results;
  Buffer.contents b

let latencies c =
  let a =
    Array.of_list
      (List.map (fun r -> r.qr_finish_s -. r.qr_arrival_s) c.sv_results)
  in
  Array.sort compare a;
  a

(* Nearest-rank percentile on a sorted array; deterministic. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let counters_to_json c =
  let lat = latencies c in
  Json.Obj
    [
      ("queries", Json.Int (List.length c.sv_results));
      ("lanes", Json.Int c.sv_lanes);
      ("failed", Json.Int c.sv_failed);
      ("timed_out", Json.Int c.sv_timed_out);
      ("makespan_s", Json.Float c.sv_makespan_s);
      ("wall_s", Json.Float c.sv_wall_s);
      ("latency_p50_s", Json.Float (percentile lat 0.50));
      ("latency_p99_s", Json.Float (percentile lat 0.99));
      ( "cache",
        match c.sv_cache with
        | None -> Json.Null
        | Some s ->
            Json.Obj
              [
                ("hits", Json.Int s.Plan_cache.hits);
                ("misses", Json.Int s.Plan_cache.misses);
                ("evictions", Json.Int s.Plan_cache.evictions);
                ("entries", Json.Int s.Plan_cache.entries);
              ] );
      ( "tenants",
        Json.List
          (List.map
             (fun tc ->
               Json.Obj
                 [
                   ("name", Json.Str tc.tc_name);
                   ("weight", Json.Int tc.tc_weight);
                   ("admissions", Json.Int tc.tc_admissions);
                   ("max_queue", Json.Int tc.tc_max_queue);
                   ("queue_wait_s", Json.Float tc.tc_queue_wait_s);
                   ("service_s", Json.Float tc.tc_service_s);
                 ])
             c.sv_tenants) );
    ]
