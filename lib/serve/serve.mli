(** [emma serve]: a multi-tenant query service over {!Emma.Session}.

    Tenants submit named queries following an {!Arrival} trace; a
    fair-share admission scheduler — deficit round-robin over per-tenant
    queues, deterministic tie-break on submission id — dispatches them
    over [max_inflight] service lanes on one shared session (shared
    work-stealing pool, shared plan cache, per-tenant memory budgets).

    Two modes mirror the chaos layer's design:

    - {!run_sim} is a deterministic discrete-event simulation: service
      time is the session's deterministic compile charge plus the
      engine's simulated cost, so every counter — queue depths, cache
      hits/misses, per-tenant admissions, the full {!fingerprint} — is
      bit-identical across replays and across domain counts, and each
      query's value and engine metrics match a standalone [run_on].
    - {!run_concurrent} is real concurrency: one host domain per tenant
      lane replays that tenant's share of the trace over the shared pool
      as fast as admission allows (closed loop), measuring sustained
      wall-clock throughput. *)

module Session = Emma.Session
module Plan_cache = Emma.Plan_cache

type tenant = {
  tn_name : string;
  tn_weight : int;  (** fair-share weight (>= 1): deficit earned per round *)
  tn_mem_budget : float option;
      (** per-tenant engine memory budget, overriding the session config *)
}

val tenant : ?weight:int -> ?mem_budget:float -> string -> tenant
(** [weight] defaults to 1. Raises [Invalid_argument] when [weight < 1]. *)

type workload = (string * (Emma.Expr.program * (string * Emma.Value.t list) list)) list
(** Query name → source program + input tables. Submissions go through
    {!Session.submit}, so repeat names hit the plan cache. *)

type query_result = {
  qr_sub : int;  (** submission id: position in the arrival trace *)
  qr_tenant : string;
  qr_query : string;
  qr_arrival_s : float;
  qr_start_s : float;  (** dispatch time (sim clock / wall offset) *)
  qr_finish_s : float;
  qr_service_s : float;  (** compile charge + simulated cost (sim mode) *)
  qr_cache : Session.cache_status;
  qr_outcome : Session.outcome;
      (** full outcome — value and per-query metrics, present on failure
          paths too *)
}

type tenant_counters = {
  tc_name : string;
  tc_weight : int;
  tc_admissions : int;  (** queries dispatched for this tenant *)
  tc_max_queue : int;  (** deepest backlog observed (sim mode) *)
  tc_queue_wait_s : float;  (** total dispatch − arrival *)
  tc_service_s : float;
}

type counters = {
  sv_results : query_result list;  (** in submission-id order *)
  sv_tenants : tenant_counters list;  (** in declaration order *)
  sv_cache : Plan_cache.stats option;
  sv_failed : int;
  sv_timed_out : int;
  sv_lanes : int;
  sv_makespan_s : float;
  sv_wall_s : float;  (** host seconds; excluded from {!fingerprint} *)
}

val run_sim :
  ?quantum_s:float ->
  Session.t ->
  tenant list ->
  workload ->
  Arrival.event list ->
  counters
(** Deterministic replay of the trace. Lanes = the session config's
    [max_inflight] (default: one per tenant). [quantum_s] (default 1.0)
    is the deficit earned per weight unit per scheduler round; any
    positive value is starvation-free. Raises [Invalid_argument] when a
    trace event names an unknown tenant or query, on duplicate tenants,
    or on an empty tenant list. *)

val run_concurrent :
  Session.t -> tenant list -> workload -> Arrival.event list -> counters
(** One domain per tenant lane over the shared session; [max_inflight]
    enforced by a counting semaphore. Counters use host wall clock;
    [qr_arrival_s] is re-anchored to the instant the lane started waiting
    for admission (the scripted times are on the simulated clock), so
    latency = admission wait + service. Values and engine metrics per
    query remain deterministic. *)

val fingerprint : counters -> string
(** The replay identity of a sim run: every scheduling/queue/cache
    quantity in pinned formatting, host wall time excluded — bit-identical
    across replays and across 1/2/4/8 domains (property-tested). *)

val latencies : counters -> float array
(** Sorted [finish − arrival] per query. *)

val percentile : float array -> float -> float
(** Nearest-rank percentile on a sorted array ([percentile lat 0.99]). *)

val counters_to_json : counters -> Emma.Json.t
(** Machine-readable summary (queries, lanes, p50/p99, cache stats,
    per-tenant counters) with the repo's pinned float rendering. *)

val cache_to_string : Session.cache_status -> string
val status_to_string : Session.outcome -> string
