(** [emma serve]: a multi-tenant query service over {!Emma.Session}.

    Tenants submit named queries following an {!Arrival} trace; a
    fair-share admission scheduler — deficit round-robin over per-tenant
    queues, deterministic tie-break on submission id — dispatches them
    over [max_inflight] service lanes on one shared session (shared
    work-stealing pool, shared plan cache, per-tenant memory budgets).

    Two modes mirror the chaos layer's design:

    - {!run_sim} is a deterministic discrete-event simulation: service
      time is the session's deterministic compile charge plus the
      engine's simulated cost, so every counter — queue depths, cache
      hits/misses, per-tenant admissions, the full {!fingerprint} — is
      bit-identical across replays and across domain counts, and each
      query's value and engine metrics match a standalone [run_on].
    - {!run_concurrent} is real concurrency: one host domain per tenant
      lane replays that tenant's share of the trace over the shared pool
      as fast as admission allows (closed loop), measuring sustained
      wall-clock throughput.

    {b Overload control.} Both modes run under a {!policy}: per-query
    deadlines (queue-expired queries are shed before dispatch; admitted
    ones carry the remaining budget into the engine, which raises a
    classified [Cancelled] outcome past it), bounded per-tenant queues
    with a seeded-deterministic victim pick, per-tenant circuit breakers
    (open after K consecutive bad outcomes, half-open probe after a
    cool-down), a degradation ladder (halve dop → disable speculation →
    plan-cache-only) stepped by total backlog, and graceful drain. Every
    decision in sim mode is a pure function of (seed, trace, simulated
    clock) taken on the coordinator, so shed/breaker behaviour replays
    bit-identically at any domain count. Shed queries are always counted
    and reported per submission — nothing is silently dropped. In
    concurrent mode the queue bound, breaker and ladder do not apply
    (they would race on wall time); deadlines and {!drain} do. *)

module Session = Emma.Session
module Config = Emma.Config
module Cancel = Emma.Cancel
module Plan_cache = Emma.Plan_cache
module Wal = Emma_util.Wal

type tenant = {
  tn_name : string;
  tn_weight : int;  (** fair-share weight (>= 1): deficit earned per round *)
  tn_mem_budget : float option;
      (** per-tenant engine memory budget, overriding the session config *)
}

val tenant : ?weight:int -> ?mem_budget:float -> string -> tenant
(** [weight] defaults to 1. Raises [Invalid_argument] when [weight < 1]. *)

type workload = (string * (Emma.Expr.program * (string * Emma.Value.t list) list)) list
(** Query name → source program + input tables. Submissions go through
    {!Session.submit}, so repeat names hit the plan cache. *)

type query_result = {
  qr_sub : int;  (** submission id: position in the arrival trace *)
  qr_tenant : string;
  qr_query : string;
  qr_arrival_s : float;
  qr_start_s : float;  (** dispatch time (sim clock / wall offset) *)
  qr_finish_s : float;
  qr_service_s : float;  (** compile charge + simulated cost (sim mode) *)
  qr_cache : Session.cache_status;
  qr_outcome : Session.outcome;
      (** full outcome — value and per-query metrics, present on failure
          and cancellation paths too *)
  qr_degrade : int;
      (** degradation-ladder level the query ran at: 0 = none, 1 =
          halved dop, 2 = + no speculation, 3 = plan-cache-only *)
}

(** Why a query was shed instead of run. Every shed is counted and
    carries its submission identity — no query is ever silently lost. *)
type shed_reason =
  | Shed_deadline  (** queue wait alone already exceeded the deadline *)
  | Shed_queue_full
      (** per-tenant queue at [max_queue]; the victim (arriving vs oldest
          queued) is a seeded-deterministic pick *)
  | Shed_breaker  (** tenant circuit open: fast-fail without dispatch *)
  | Shed_drain  (** arrived after the drain point: admissions stopped *)
  | Shed_degraded
      (** ladder level 3 (plan-cache-only): the query would compile cold *)

type shed_record = {
  sh_sub : int;
  sh_tenant : string;
  sh_query : string;
  sh_arrival_s : float;
  sh_at_s : float;  (** clock when the shed decision was taken *)
  sh_reason : shed_reason;
}

type tenant_counters = {
  tc_name : string;
  tc_weight : int;
  tc_admissions : int;  (** queries dispatched for this tenant *)
  tc_max_queue : int;
      (** deepest backlog observed — sim mode: the scheduler queue;
          concurrent mode: lane threads blocked on the admission gate
          (measured under a lock, at most 1 with the one-lane-per-tenant
          replayer). Never a placeholder in either mode. *)
  tc_shed : int;
  tc_breaker_opens : int;  (** times this tenant's circuit opened *)
  tc_queue_wait_s : float;  (** total dispatch − arrival *)
  tc_service_s : float;
}

type counters = {
  sv_results : query_result list;  (** in submission-id order *)
  sv_shed : shed_record list;  (** in submission-id order *)
  sv_tenants : tenant_counters list;  (** in declaration order *)
  sv_cache : Plan_cache.stats option;
  sv_failed : int;
  sv_timed_out : int;
  sv_cancelled : int;  (** admitted queries ending in [Cancelled] *)
  sv_degraded : int;  (** admitted queries run at ladder level >= 1 *)
  sv_breaker_opens : int;
  sv_breaker_half_opens : int;
  sv_breaker_closes : int;
  sv_lanes : int;
  sv_makespan_s : float;
  sv_wall_s : float;  (** host seconds; excluded from {!fingerprint} *)
}

(** Overload-control policy. All decisions taken under it in sim mode are
    coordinator-side pure functions of (seed, trace, simulated clock) —
    never of wall time, domain count or queue races — which is what keeps
    sim fingerprints bit-identical across 1/2/4/8 domains and replays. *)
type policy = {
  pl_seed : int;  (** seeds the queue-full victim picks *)
  pl_deadline_s : float option;
      (** end-to-end per-query budget (arrival → finish): queue-expired
          queries are shed, admitted ones hand the remaining budget to
          the engine as [Config.deadline_s] *)
  pl_max_queue : int option;  (** per-tenant queue bound (>= 1) *)
  pl_breaker : Config.breaker_spec option;
  pl_drain_after_s : float option;
      (** stop admitting arrivals past this simulated clock *)
  pl_degrade_depth : int option;
      (** ladder step size in total queued queries: level = depth / step,
          capped at 3; [None] = ladder off *)
}

val no_policy : policy
(** Everything off, seed 0 — byte-identical behaviour to a pre-policy
    serve. *)

val policy_of_config : ?seed:int -> lanes:int -> Config.t -> policy
(** The default policy of both run modes: [deadline_s], [max_queue],
    [breaker] and [drain_after_s] map across from the session config; the
    degradation ladder auto-engages when deadlines are set (step =
    2 × lanes of backlog per level) and stays off otherwise. *)

exception Recovery_error of string
(** Raised by {!recover_sim} (and by journaling {!run_sim}) when the
    durable state on disk cannot be reconciled with the run being
    performed: a journal record regenerated from (trace, flags) differs
    from the retained journal, a snapshot's scheduler dimensions do not
    match the session, or a snapshot names a cached plan outside the
    workload. The one-line message tells the operator to recover with the
    original run's flags and trace; the CLI maps it to exit 2. *)

type durability = {
  du_wal : Wal.t;  (** open journal (see {!Emma_util.Wal.create}) *)
  du_snapshot_every : int option;
      (** write a compacting snapshot every K outcomes ([None] = never) *)
}

val run_sim :
  ?quantum_s:float ->
  ?policy:policy ->
  ?durability:durability ->
  Session.t ->
  tenant list ->
  workload ->
  Arrival.event list ->
  counters
(** Deterministic replay of the trace. Lanes = the session config's
    [max_inflight] (default: one per tenant). [quantum_s] (default 1.0)
    is the deficit earned per weight unit per scheduler round; any
    positive value is starvation-free. [policy] defaults to
    {!policy_of_config} of the session config (everything off for a
    config without robustness knobs). Raises [Invalid_argument] when a
    trace event names an unknown tenant or query, on duplicate tenants,
    on an empty tenant list, or on a non-positive [max_queue].

    With [durability] the run journals every decision as it is taken —
    one meta record, one record per arrival, then a shed record per shed
    and dispatch + outcome records per admission — and optionally writes
    compacting snapshots every [du_snapshot_every] outcomes. Journaling
    never changes the fingerprint: a journaled run and a plain run of the
    same (session, trace, policy) produce bit-identical counters. *)

val recover_sim :
  ?quantum_s:float ->
  ?policy:policy ->
  durability:durability ->
  Session.t ->
  tenant list ->
  workload ->
  Arrival.event list ->
  counters
(** Crash recovery: rebuild the serve run recorded in [durability]'s
    journal. The scheduler re-simulates the trace from the latest usable
    snapshot (or from t=0); decisions already journaled are verified
    against the regenerated ones ({!Recovery_error} on mismatch), queries
    with a journaled outcome are {e not} re-executed — their results are
    rebuilt from the journal and the plan cache is warmed stats-neutrally
    to the same population and LRU order — and queries that were admitted
    but unfinished at the crash are re-submitted idempotently under their
    original submission id. New decisions past the retained journal are
    appended, so the recovered journal converges to the uninterrupted
    run's journal and repeated crashes compose. The recovered counters'
    {!fingerprint} is bit-identical to an uninterrupted run
    (property-tested across every crash point). *)

type drain_ctl
(** Graceful-drain controller for {!run_concurrent}: create one before
    starting, share it with the code that decides to stop. *)

val drain_controller : unit -> drain_ctl

val drain : drain_ctl -> unit
(** Stops admissions (lanes shed their remaining trace as [Shed_drain])
    and requests the shared {!Cancel} token, so in-flight queries stop at
    their next engine safepoint with a classified [Cancelled] outcome
    instead of being abandoned. Idempotent. *)

val draining : drain_ctl -> bool

val run_concurrent :
  ?drain:drain_ctl ->
  Session.t ->
  tenant list ->
  workload ->
  Arrival.event list ->
  counters
(** One domain per tenant lane over the shared session; [max_inflight]
    enforced by a counting semaphore. Counters use host wall clock;
    [qr_arrival_s] is re-anchored to the instant the lane started waiting
    for admission (the scripted times are on the simulated clock), so
    latency = admission wait + service. Values and engine metrics per
    query remain deterministic. The session config's [deadline_s] sheds
    queries whose admission wait already exceeded the budget and bounds
    each admitted query's engine time; [drain] stops admissions and
    cancels in-flight work. Queue bound, breaker and ladder are sim-mode
    only. *)

val fingerprint : counters -> string
(** The replay identity of a sim run: every scheduling/queue/cache/shed/
    breaker quantity in pinned formatting, host wall time excluded —
    bit-identical across replays and across 1/2/4/8 domains
    (property-tested). *)

val latencies : counters -> float array
(** Sorted [finish − arrival] per {e admitted} query (sheds excluded —
    they are reported separately, never folded into latency). *)

val percentile : float array -> float -> float
(** Nearest-rank percentile on a sorted array ([percentile lat 0.99]). *)

val counters_to_json : counters -> Emma.Json.t
(** Machine-readable summary (queries, lanes, p50/p99, shed counts by
    reason, breaker cycle counts, cache stats, per-tenant counters) with
    the repo's pinned float rendering. *)

val cache_to_string : Session.cache_status -> string
val status_to_string : Session.outcome -> string
val shed_reason_to_string : shed_reason -> string
