(** Arrival traces for [emma serve].

    A trace is an ordered list of submissions — arrival time, tenant
    name, query name. The list position is the submission id, the
    deterministic tie-break used by the fair-share scheduler, so a trace
    replays to bit-identical counters however many domains execute it.

    {b Text format} (the CLI's [--arrivals FILE]): one event per line,

    {v <at_s> <tenant> <query> v}

    with [at_s] a non-negative float ([%.6f] on output), [#] comments and
    blank lines ignored. *)

type event = { at_s : float; tenant : string; query : string }

val to_string : event list -> string
(** Pinned rendering; round-trips through {!of_string} byte-stably. *)

val of_string : string -> (event list, string) result
(** Parses the text format; the error is a one-line actionable message
    naming the offending line. *)

val generate :
  seed:int ->
  rate:float ->
  alpha:float ->
  tenants:string list ->
  queries:string list ->
  n:int ->
  event list
(** A deterministic heavy-traffic trace: [n] arrivals with
    [Exponential rate] inter-arrival gaps; tenant and query of each
    arrival drawn Zipf([alpha]) over their list order (first entries
    dominate — the repeat-heavy popularity law that makes a plan cache
    pay). Everything is derived from [seed] via {!Emma_util.Prng}.
    Raises [Invalid_argument] on an empty tenant/query list or a
    non-positive rate. *)
