(* Arrival traces: the scripted input of serve's deterministic sim mode
   and the replayable workload of its real concurrent mode. A trace is an
   ordered list of (arrival time, tenant, query name); the position in
   the list is the submission id, the deterministic tie-break everywhere
   downstream. *)

module Prng = Emma_util.Prng

type event = { at_s : float; tenant : string; query : string }

(* One event per line: `<at_s> <tenant> <query>`, `#` comments and blank
   lines ignored. %.6f matches the repo's pinned float rendering, so
   to_string/of_string round-trips byte-stably. *)
let to_string events =
  String.concat ""
    (List.map
       (fun e -> Printf.sprintf "%.6f %s %s\n" e.at_s e.tenant e.query)
       events)

let of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        match String.split_on_char ' ' (String.trim line)
              |> List.filter (fun w -> w <> "")
        with
        | [] -> go acc (lineno + 1) rest
        | [ at; tenant; query ] -> (
            match float_of_string_opt at with
            | Some at_s when Float.is_finite at_s && at_s >= 0.0 ->
                go ({ at_s; tenant; query } :: acc) (lineno + 1) rest
            | _ ->
                Error
                  (Printf.sprintf
                     "arrival trace line %d: %S is not a non-negative arrival \
                      time"
                     lineno at))
        | _ ->
            Error
              (Printf.sprintf
                 "arrival trace line %d: expected `<at_s> <tenant> <query>'"
                 lineno))
  in
  go [] 1 lines

(* Zipf(alpha) draw over ranks 0..n-1 by inverse CDF on precomputed
   cumulative weights: rank r carries weight (r+1)^-alpha, so the first
   entries dominate — the repeat-heavy popularity law the plan cache is
   designed for. *)
let zipf_cdf ~alpha n =
  let w = Array.init n (fun r -> (float_of_int (r + 1)) ** -.alpha) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let acc = ref 0.0 in
  Array.map
    (fun x ->
      acc := !acc +. (x /. total);
      !acc)
    w

let zipf_pick g cdf =
  let u = Prng.unit_float g in
  let n = Array.length cdf in
  let rec find i = if i >= n - 1 || u < cdf.(i) then i else find (i + 1) in
  find 0

let generate ~seed ~rate ~alpha ~tenants ~queries ~n =
  if tenants = [] || queries = [] || n < 0 then
    invalid_arg "Arrival.generate: need tenants, queries and n >= 0";
  if not (rate > 0.0) then invalid_arg "Arrival.generate: rate must be > 0";
  let g = Prng.create seed in
  let tn = Array.of_list tenants and qs = Array.of_list queries in
  let tcdf = zipf_cdf ~alpha (Array.length tn) in
  let qcdf = zipf_cdf ~alpha (Array.length qs) in
  let clock = ref 0.0 in
  List.init n (fun _ ->
      clock := !clock +. Prng.exponential g ~rate;
      let tenant = tn.(zipf_pick g tcdf) in
      let query = qs.(zipf_pick g qcdf) in
      { at_s = !clock; tenant; query })
