module Expr = Emma_lang.Expr
module Prim = Emma_lang.Prim
module Value = Emma_value.Value

type ty =
  | Tunit
  | Tbool
  | Tint
  | Tfloat
  | Tnum
  | Tstring
  | Tblob
  | Tvector
  | Ttuple of ty list
  | Trecord of row
  | Toption of ty
  | Tbag of ty
  | Tstateful of ty
  | Tfun of ty * ty
  | Tvar of tv ref

and tv = Unbound of int | Link of ty

and row = { fields : (string * ty) list; more : rv ref option }

and rv = Runbound of int | Rlink of row

exception Type_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Type_error m)) fmt

let counter = ref 0

let fresh_var () =
  incr counter;
  Tvar (ref (Unbound !counter))

let fresh_row_var () =
  incr counter;
  ref (Runbound !counter)

let rec resolve ty =
  match ty with
  | Tvar ({ contents = Link t } as r) ->
      let t = resolve t in
      r := Link t;
      t
  | ty -> ty

(* Flatten a row's link chain into (all fields, terminal row variable). *)
let rec resolve_row (r : row) : (string * ty) list * rv ref option =
  match r.more with
  | Some { contents = Rlink inner } ->
      let inner_fields, rest = resolve_row inner in
      (r.fields @ inner_fields, rest)
  | other -> (r.fields, other)

(* ------------------------------------------------------------------ *)
(* Printing                                                             *)
(* ------------------------------------------------------------------ *)

let rec pp_ty ppf ty =
  match resolve ty with
  | Tunit -> Fmt.string ppf "unit"
  | Tbool -> Fmt.string ppf "bool"
  | Tint -> Fmt.string ppf "int"
  | Tfloat -> Fmt.string ppf "float"
  | Tnum -> Fmt.string ppf "num"
  | Tstring -> Fmt.string ppf "string"
  | Tblob -> Fmt.string ppf "blob"
  | Tvector -> Fmt.string ppf "vector"
  | Ttuple ts -> Fmt.pf ppf "(%a)" (Fmt.list ~sep:(Fmt.any " * ") pp_ty) ts
  | Trecord r ->
      let fields, rest = resolve_row r in
      Fmt.pf ppf "{%a%s}"
        (Fmt.list ~sep:(Fmt.any "; ") (fun ppf (n, t) -> Fmt.pf ppf "%s : %a" n pp_ty t))
        (List.sort compare fields)
        (match rest with Some { contents = Runbound _ } -> "; ..." | _ -> "")
  | Toption t -> Fmt.pf ppf "%a option" pp_ty t
  | Tbag t -> Fmt.pf ppf "%a bag" pp_ty t
  | Tstateful t -> Fmt.pf ppf "%a stateful" pp_ty t
  | Tfun (a, b) -> Fmt.pf ppf "(%a -> %a)" pp_ty a pp_ty b
  | Tvar { contents = Unbound n } -> Fmt.pf ppf "'a%d" n
  | Tvar { contents = Link _ } -> assert false

let ty_to_string t = Fmt.str "%a" pp_ty t

(* ------------------------------------------------------------------ *)
(* Unification                                                          *)
(* ------------------------------------------------------------------ *)

let is_numeric = function Tint | Tfloat | Tnum -> true | _ -> false

let rec occurs (v : tv ref) ty =
  match resolve ty with
  | Tvar r -> r == v
  | Ttuple ts -> List.exists (occurs v) ts
  | Trecord r ->
      let fields, _ = resolve_row r in
      List.exists (fun (_, t) -> occurs v t) fields
  | Toption t | Tbag t | Tstateful t -> occurs v t
  | Tfun (a, b) -> occurs v a || occurs v b
  | Tunit | Tbool | Tint | Tfloat | Tnum | Tstring | Tblob | Tvector -> false

let rec unify t1 t2 =
  let t1 = resolve t1 and t2 = resolve t2 in
  match (t1, t2) with
  | Tvar r1, Tvar r2 when r1 == r2 -> ()
  | Tvar r, t | t, Tvar r ->
      if occurs r t then fail "cannot construct the infinite type %s" (ty_to_string t);
      r := Link t
  | a, b when is_numeric a && is_numeric b ->
      (* numeric widening: int and float are interchangeable, as in the
         interpreter's arithmetic promotion *)
      ()
  | Tunit, Tunit | Tbool, Tbool | Tstring, Tstring | Tblob, Tblob | Tvector, Tvector -> ()
  | Ttuple a, Ttuple b ->
      if List.length a <> List.length b then
        fail "tuple arity mismatch: %s vs %s" (ty_to_string t1) (ty_to_string t2);
      List.iter2 unify a b
  | Trecord r1, Trecord r2 -> unify_rows r1 r2
  | Toption a, Toption b -> unify a b
  | Tbag a, Tbag b -> unify a b
  | Tstateful a, Tstateful b -> unify a b
  | Tfun (a1, b1), Tfun (a2, b2) ->
      unify a1 a2;
      unify b1 b2
  | a, b -> fail "type mismatch: %s vs %s" (ty_to_string a) (ty_to_string b)

and unify_rows r1 r2 =
  let f1, rest1 = resolve_row r1 in
  let f2, rest2 = resolve_row r2 in
  (match (rest1, rest2) with
  | Some v1, Some v2 when v1 == v2 ->
      if
        List.exists (fun (n, _) -> not (List.mem_assoc n f2)) f1
        || List.exists (fun (n, _) -> not (List.mem_assoc n f1)) f2
      then fail "recursive row"
  | _ -> ());
  (* fields present on both sides unify *)
  List.iter
    (fun (n, t1) ->
      match List.assoc_opt n f2 with
      | Some t2 -> begin
          try unify t1 t2
          with Type_error m -> fail "field %s: %s" n m
        end
      | None -> ())
    f1;
  let only1 = List.filter (fun (n, _) -> not (List.mem_assoc n f2)) f1 in
  let only2 = List.filter (fun (n, _) -> not (List.mem_assoc n f1)) f2 in
  (* fields present on one side only must be absorbable by the other
     side's row variable; a closed row rejects them *)
  let missing rest closed_fields extra =
    match (rest, extra) with
    | _, [] -> ()
    | None, (n, _) :: _ ->
        fail "record %s has no field %S"
          (ty_to_string (Trecord { fields = closed_fields; more = None }))
          n
    | Some _, _ -> ()
  in
  missing rest2 f2 only1;
  missing rest1 f1 only2;
  (* rebind the row variables so both rows share the union of fields *)
  match (rest1, rest2) with
  | Some v1, Some v2 when v1 == v2 -> ()
  | _ ->
      let shared = fresh_row_var () in
      (match rest1 with
      | Some v -> v := Rlink { fields = only2; more = Some shared }
      | None -> ());
      (match rest2 with
      | Some v -> v := Rlink { fields = only1; more = Some shared }
      | None -> ())

(* ------------------------------------------------------------------ *)
(* Types of values and schemas                                          *)
(* ------------------------------------------------------------------ *)

let rec ty_of_value (v : Value.t) =
  match v with
  | Value.Unit -> Tunit
  | Value.Bool _ -> Tbool
  | Value.Int _ -> Tint
  | Value.Float _ -> Tfloat
  | Value.String _ -> Tstring
  | Value.Blob _ -> Tblob
  | Value.Vector _ -> Tvector
  | Value.Tuple vs -> Ttuple (List.map ty_of_value (Array.to_list vs))
  | Value.Record fields ->
      Trecord
        { fields = List.map (fun (n, v) -> (n, ty_of_value v)) (Array.to_list fields);
          more = None }
  | Value.Option (Some v) -> Toption (ty_of_value v)
  | Value.Option None -> Toption (fresh_var ())
  | Value.Bag [] -> Tbag (fresh_var ())
  | Value.Bag (v :: _) -> Tbag (ty_of_value v)

let schema_of_rows rows =
  match rows with [] -> Tbag (fresh_var ()) | v :: _ -> Tbag (ty_of_value v)

(* ------------------------------------------------------------------ *)
(* Primitive signatures                                                 *)
(* ------------------------------------------------------------------ *)

(* Returns (argument types, result type); fresh per application. *)
let prim_signature (p : Prim.t) : ty list * ty =
  match p with
  | Prim.Add | Prim.Sub | Prim.Mul | Prim.Div | Prim.Mod -> ([ Tnum; Tnum ], Tnum)
  | Prim.Neg | Prim.Abs -> ([ Tnum ], Tnum)
  | Prim.Sqrt | Prim.Floor | Prim.To_float -> ([ Tnum ], Tfloat)
  | Prim.To_int -> ([ Tnum ], Tint)
  | Prim.Min2 | Prim.Max2 ->
      let a = fresh_var () in
      ([ a; a ], a)
  | Prim.Eq | Prim.Ne | Prim.Lt | Prim.Le | Prim.Gt | Prim.Ge ->
      let a = fresh_var () in
      ([ a; a ], Tbool)
  | Prim.And | Prim.Or -> ([ Tbool; Tbool ], Tbool)
  | Prim.Not -> ([ Tbool ], Tbool)
  | Prim.Vadd | Prim.Vsub -> ([ Tvector; Tvector ], Tvector)
  | Prim.Vscale -> ([ Tnum; Tvector ], Tvector)
  | Prim.Vdiv_scalar -> ([ Tvector; Tnum ], Tvector)
  | Prim.Vdist | Prim.Vdot -> ([ Tvector; Tvector ], Tfloat)
  | Prim.Vzeros -> ([ Tnum ], Tvector)
  | Prim.Str_concat -> ([ Tstring; Tstring ], Tstring)
  | Prim.Str_len -> ([ Tstring ], Tint)
  | Prim.Str_contains -> ([ Tstring; Tstring ], Tbool)
  | Prim.Is_some -> ([ Toption (fresh_var ()) ], Tbool)
  | Prim.Opt_get ->
      let a = fresh_var () in
      ([ Toption a ], a)
  | Prim.Opt_get_or ->
      let a = fresh_var () in
      ([ Toption a; a ], a)
  | Prim.Mk_some ->
      let a = fresh_var () in
      ([ a ], Toption a)
  | Prim.Mk_none -> ([], Toption (fresh_var ()))
  | Prim.Mk_blob -> ([ Tnum; Tnum ], Tblob)
  | Prim.Blob_bytes -> ([ Tblob ], Tint)
  | Prim.Hash_value -> ([ fresh_var () ], Tint)

(* ------------------------------------------------------------------ *)
(* Expression inference                                                 *)
(* ------------------------------------------------------------------ *)

type ctx = {
  mutable vars : (string * ty) list;
  mutable tables : (string * ty) list;  (* element types of read/written tables *)
}

let table_elem_ty ctx name =
  match List.assoc_opt name ctx.tables with
  | Some t -> t
  | None ->
      let t = fresh_var () in
      ctx.tables <- (name, t) :: ctx.tables;
      t

let with_context what f =
  try f ()
  with Type_error m -> fail "%s: %s" what m

let rec infer ctx env (e : Expr.expr) : ty =
  match e with
  | Expr.Const v -> ty_of_value v
  | Expr.Var x -> begin
      match List.assoc_opt x env with
      | Some t -> t
      | None -> fail "unbound variable %s" x
    end
  | Expr.Lam (x, body) ->
      let a = fresh_var () in
      Tfun (a, infer ctx ((x, a) :: env) body)
  | Expr.App (f, a) ->
      let tf = infer ctx env f in
      let ta = infer ctx env a in
      let result = fresh_var () in
      with_context "application" (fun () -> unify tf (Tfun (ta, result)));
      result
  | Expr.Tuple es -> Ttuple (List.map (infer ctx env) es)
  | Expr.Proj (e, i) -> begin
      let t = resolve (infer ctx env e) in
      match t with
      | Ttuple ts when i < List.length ts -> List.nth ts i
      | Ttuple ts -> fail "projection ._%d out of a %d-tuple" (i + 1) (List.length ts)
      | Tvar _ ->
          (* cannot guess the arity: give up gracefully with a fresh type *)
          fresh_var ()
      | t -> fail "projection from a non-tuple (%s)" (ty_to_string t)
    end
  | Expr.Record fields ->
      Trecord { fields = List.map (fun (n, e) -> (n, infer ctx env e)) fields; more = None }
  | Expr.Field (e, name) ->
      let t = infer ctx env e in
      let a = fresh_var () in
      with_context (Printf.sprintf "field .%s" name) (fun () ->
          unify t (Trecord { fields = [ (name, a) ]; more = Some (fresh_row_var ()) }));
      a
  | Expr.Prim (p, args) ->
      let arg_tys, result = prim_signature p in
      if List.length arg_tys <> List.length args then
        fail "primitive %s expects %d arguments" (Prim.name p) (List.length arg_tys);
      List.iter2
        (fun want arg ->
          with_context (Printf.sprintf "argument of %s" (Prim.name p)) (fun () ->
              unify want (infer ctx env arg)))
        arg_tys args;
      result
  | Expr.If (c, t, e) ->
      with_context "if condition" (fun () -> unify (infer ctx env c) Tbool);
      let tt = infer ctx env t in
      let te = infer ctx env e in
      with_context "if branches" (fun () -> unify tt te);
      tt
  | Expr.Let (x, a, b) ->
      let ta = infer ctx env a in
      infer ctx ((x, ta) :: env) b
  | Expr.BagOf es ->
      let elem = fresh_var () in
      List.iter
        (fun e -> with_context "bag literal" (fun () -> unify elem (infer ctx env e)))
        es;
      Tbag elem
  | Expr.Range (lo, hi) ->
      with_context "range" (fun () ->
          unify (infer ctx env lo) Tnum;
          unify (infer ctx env hi) Tnum);
      Tbag Tint
  | Expr.Read (Expr.Src_table name) -> Tbag (table_elem_ty ctx name)
  | Expr.Map (f, xs) ->
      let elem = bag_elem ctx env xs in
      Tbag (with_context "map" (fun () -> infer_fn1 ctx env f elem))
  | Expr.FlatMap (f, xs) ->
      let elem = bag_elem ctx env xs in
      let out = fresh_var () in
      with_context "flatMap" (fun () -> unify (infer_fn1 ctx env f elem) (Tbag out));
      Tbag out
  | Expr.Filter (p, xs) ->
      let elem = bag_elem ctx env xs in
      with_context "withFilter" (fun () -> unify (infer_fn1 ctx env p elem) Tbool);
      Tbag elem
  | Expr.GroupBy (k, xs) ->
      let elem = bag_elem ctx env xs in
      let key = with_context "groupBy" (fun () -> infer_fn1 ctx env k elem) in
      Tbag (Trecord { fields = [ ("key", key); ("values", Tbag elem) ]; more = None })
  | Expr.Fold (fns, xs) ->
      let elem = bag_elem ctx env xs in
      infer_fold ctx env fns elem
  | Expr.AggBy (k, fns, xs) ->
      let elem = bag_elem ctx env xs in
      let key = with_context "aggBy key" (fun () -> infer_fn1 ctx env k elem) in
      let agg = infer_fold ctx env fns elem in
      Tbag (Trecord { fields = [ ("key", key); ("agg", agg) ]; more = None })
  | Expr.Union (a, b) | Expr.Minus (a, b) ->
      let ta = infer ctx env a and tb = infer ctx env b in
      with_context "bag union/minus" (fun () ->
          unify ta (Tbag (fresh_var ()));
          unify ta tb);
      ta
  | Expr.Distinct a ->
      let t = infer ctx env a in
      with_context "distinct" (fun () -> unify t (Tbag (fresh_var ())));
      t
  | Expr.Comp c -> infer_comp ctx env c
  | Expr.Flatten e ->
      let inner = fresh_var () in
      with_context "flatten" (fun () -> unify (infer ctx env e) (Tbag (Tbag inner)));
      Tbag inner
  | Expr.Stateful_create { key; init } ->
      let elem = bag_elem ctx env init in
      ignore (with_context "stateful key" (fun () -> infer_fn1 ctx env key elem));
      Tstateful elem
  | Expr.Stateful_bag s ->
      let elem = fresh_var () in
      with_context "bag()" (fun () -> unify (infer ctx env s) (Tstateful elem));
      Tbag elem
  | Expr.Stateful_update { state; udf } ->
      let elem = fresh_var () in
      with_context "update" (fun () ->
          unify (infer ctx env state) (Tstateful elem);
          unify (infer_fn1 ctx env udf elem) (Toption elem));
      Tbag elem
  | Expr.Stateful_update_msgs { state; msg_key; messages; udf } ->
      let elem = fresh_var () in
      let msg = bag_elem ctx env messages in
      with_context "update with messages" (fun () ->
          unify (infer ctx env state) (Tstateful elem);
          ignore (infer_fn1 ctx env msg_key msg);
          unify (infer_fn2 ctx env udf elem msg) (Toption elem));
      Tbag elem

(* Infer a unary UDF applied at a known argument type. Binding the
   parameter BEFORE inferring the body lets shape-directed constructs
   (tuple projection) see concrete types. *)
and infer_fn1 ctx env f arg_ty =
  match f with
  | Expr.Lam (x, body) -> infer ctx ((x, arg_ty) :: env) body
  | f ->
      let result = fresh_var () in
      with_context "function operand" (fun () ->
          unify (infer ctx env f) (Tfun (arg_ty, result)));
      result

and infer_fn2 ctx env f a_ty b_ty =
  match f with
  | Expr.Lam (x, Expr.Lam (y, body)) -> infer ctx ((y, b_ty) :: (x, a_ty) :: env) body
  | f ->
      let result = fresh_var () in
      with_context "function operand" (fun () ->
          unify (infer ctx env f) (Tfun (a_ty, Tfun (b_ty, result))));
      result

and bag_elem ctx env xs =
  let elem = fresh_var () in
  with_context "collection operand" (fun () -> unify (infer ctx env xs) (Tbag elem));
  elem

and infer_fold ctx env (fns : Expr.fold_fns) elem =
  let acc = fresh_var () in
  with_context "fold unit" (fun () -> unify (infer ctx env fns.Expr.f_empty) acc);
  with_context "fold single" (fun () -> unify (infer_fn1 ctx env fns.Expr.f_single elem) acc);
  with_context "fold union" (fun () -> unify (infer_fn2 ctx env fns.Expr.f_union acc acc) acc);
  acc

and infer_comp ctx env { Expr.head; quals; alg } =
  let rec go env = function
    | [] -> env
    | Expr.QGen (x, src) :: rest ->
        let elem = bag_elem ctx env src in
        go ((x, elem) :: env) rest
    | Expr.QGuard p :: rest ->
        with_context "comprehension guard" (fun () -> unify (infer ctx env p) Tbool);
        go env rest
  in
  let env = go env quals in
  let head_ty = infer ctx env head in
  match alg with
  | Expr.Alg_bag -> Tbag head_ty
  | Expr.Alg_fold fns -> infer_fold ctx env fns head_ty

let infer_expr env e =
  infer { vars = []; tables = [] } env e

(* ------------------------------------------------------------------ *)
(* Programs                                                             *)
(* ------------------------------------------------------------------ *)

let infer_program ?(schemas = []) ({ Expr.body; ret } : Expr.program) =
  let ctx =
    { vars = [];
      tables =
        List.map
          (fun (name, ty) ->
            match resolve ty with
            | Tbag elem -> (name, elem)
            | t -> (name, t))
          schemas }
  in
  let rec exec_block env stmts = List.fold_left exec_stmt env stmts
  and exec_stmt env = function
    | Expr.SLet (x, e) | Expr.SVar (x, e) -> (x, infer ctx env e) :: env
    | Expr.SAssign (x, e) -> begin
        match List.assoc_opt x env with
        | None -> fail "assignment to unbound variable %s" x
        | Some t ->
            with_context (Printf.sprintf "assignment to %s" x) (fun () ->
                unify t (infer ctx env e));
            env
      end
    | Expr.SWhile (c, body) ->
        with_context "while condition" (fun () -> unify (infer ctx env c) Tbool);
        ignore (exec_block env body);
        env
    | Expr.SIf (c, t, e) ->
        with_context "if condition" (fun () -> unify (infer ctx env c) Tbool);
        ignore (exec_block env t);
        ignore (exec_block env e);
        env
    | Expr.SWrite (Expr.Snk_table name, e) ->
        let elem = table_elem_ty ctx name in
        with_context (Printf.sprintf "write to %S" name) (fun () ->
            unify (infer ctx env e) (Tbag elem));
        env
  in
  let env = exec_block [] body in
  infer ctx env ret

let check_program ?schemas p =
  match infer_program ?schemas p with
  | t -> Ok t
  | exception Type_error m -> Error m
