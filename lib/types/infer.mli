(** Static type inference for the embedded language.

    In the paper, Emma programs are ordinary Scala and scalac rejects shape
    errors before the macro ever runs. Our deep embedding is untyped, so
    this module recovers that safety: a unification-based inference pass
    over programs that catches unknown record fields, collection/scalar
    confusions, non-function applications, fold algebra shape mismatches
    and join-key type clashes at [parallelize] time, instead of a runtime
    [Type_error] deep inside a simulated dataflow.

    Two deliberate accommodations of the dynamic semantics:
    {ul
    {- {b numeric widening}: [Int] and [Float] unify to the supertype
       [Num], mirroring the interpreter's arithmetic promotion ([1 + 0.5]
       is legal and is a float);}
    {- {b row-polymorphic records}: a lambda using [x.ip] gets an open
       record type [{ip : α; ...}] that later unifies with the concrete
       rows flowing into it.}} *)

type ty =
  | Tunit
  | Tbool
  | Tint
  | Tfloat
  | Tnum  (** int or float (numeric widening) *)
  | Tstring
  | Tblob
  | Tvector
  | Ttuple of ty list
  | Trecord of row
  | Toption of ty
  | Tbag of ty
  | Tstateful of ty  (** a stateful bag of elements of the given type *)
  | Tfun of ty * ty
  | Tvar of tv ref  (** unification variable *)

and tv = Unbound of int | Link of ty

and row = { fields : (string * ty) list; more : rv ref option }
(** [more = Some _] marks an open row that may acquire further fields. *)

and rv = Runbound of int | Rlink of row

exception Type_error of string
(** Inference failure, with a human-readable message naming the conflict. *)

val fresh_var : unit -> ty
val resolve : ty -> ty
(** Follows links; the result is never a bound [Tvar]/[Rlink] at the root. *)

val pp_ty : Format.formatter -> ty -> unit
val ty_to_string : ty -> string

val ty_of_value : Emma_value.Value.t -> ty
(** The (closed) type of a runtime value; bags take the type of their
    first element (an empty bag is [Tbag α]). *)

val schema_of_rows : Emma_value.Value.t list -> ty
(** [Tbag] of the first row's type — convenience for table schemas. *)

val unify : ty -> ty -> unit
(** Raises [Type_error] on a mismatch. *)

val infer_expr : (string * ty) list -> Emma_lang.Expr.expr -> ty
(** [infer_expr env e] under the given variable typings. *)

val infer_program :
  ?schemas:(string * ty) list -> Emma_lang.Expr.program -> ty
(** Infers the program's result type. [schemas] types the [read] tables
    (missing tables get fresh bag types, so inference stays total);
    writing a non-bag, reassigning at a different type, or any expression
    shape error raises [Type_error]. *)

val check_program :
  ?schemas:(string * ty) list -> Emma_lang.Expr.program -> (ty, string) result
(** Exception-free wrapper. *)
