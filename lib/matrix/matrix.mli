(** Distributed linear algebra on top of the DataBag API — the paper's §7
    names this as the intended way to grow Emma: domain abstractions are
    {e libraries of comprehensions}, so they inherit every optimization of
    the core pipeline instead of needing dedicated runtime operators.

    A matrix is a DataBag of coordinate cells [{i; j; v}] (sparse: absent
    cells are zero); a vector is a DataBag of [{i; v}]. All operations
    below build ordinary Emma expressions: matrix multiplication is an
    equi-join ([a.j == b.i]) followed by a grouped sum — the compiler turns
    the join into a repartition/broadcast join and the grouped sum into a
    map-side-combining [aggBy], with no linear-algebra-specific code
    anywhere in the stack. *)

module Expr = Emma_lang.Expr

(** {1 Value-level constructors (for feeding tables)} *)

val cells_of_dense : float array array -> Emma_value.Value.t list
(** Coordinate cells of a dense matrix; zero entries are skipped. *)

val dense_of_cells : rows:int -> cols:int -> Emma_value.Value.t list -> float array array
(** Rebuild a dense matrix from (possibly unordered) cells; absent cells
    are 0. Raises [Invalid_argument] on out-of-range coordinates. *)

val vector_cells : float array -> Emma_value.Value.t list
(** Coordinate cells [{i; v}] of a vector; zeros are skipped. *)

val dense_of_vector_cells : dim:int -> Emma_value.Value.t list -> float array

(** {1 Expression-level operations}

    Each takes and returns bag-valued expressions over cell records. *)

val scale : float -> Expr.expr -> Expr.expr
(** Scalar multiple (element-wise map). *)

val transpose : Expr.expr -> Expr.expr
(** Swap coordinates (element-wise map). *)

val add : Expr.expr -> Expr.expr -> Expr.expr
(** Element-wise sum: union of the cell bags, grouped by coordinate and
    summed (fused into an [aggBy]). *)

val multiply : Expr.expr -> Expr.expr -> Expr.expr
(** Matrix product: join on [a.j == b.i], multiply, group by [(a.i, b.j)],
    sum. *)

val matvec : Expr.expr -> Expr.expr -> Expr.expr
(** Matrix-vector product: matrix cells joined with vector cells on
    [a.j == x.i], grouped by row, summed; yields vector cells. *)

val frobenius_norm2 : Expr.expr -> Expr.expr
(** Scalar expression: the squared Frobenius norm (a fold). *)

val trace : Expr.expr -> Expr.expr
(** Scalar expression: sum of diagonal cells. *)
