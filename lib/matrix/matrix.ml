module Value = Emma_value.Value
module Expr = Emma_lang.Expr
module S = Emma_lang.Surface

(* ------------------------------------------------------------------ *)
(* Value-level constructors                                             *)
(* ------------------------------------------------------------------ *)

let cell i j v =
  Value.record [ ("i", Value.Int i); ("j", Value.Int j); ("v", Value.Float v) ]

let cells_of_dense m =
  List.concat
    (Array.to_list
       (Array.mapi
          (fun i row ->
            Array.to_list row
            |> List.mapi (fun j v -> (j, v))
            |> List.filter_map (fun (j, v) -> if v = 0.0 then None else Some (cell i j v)))
          m))

let dense_of_cells ~rows ~cols cells =
  let m = Array.make_matrix rows cols 0.0 in
  List.iter
    (fun c ->
      let i = Value.to_int (Value.field c "i") in
      let j = Value.to_int (Value.field c "j") in
      if i < 0 || i >= rows || j < 0 || j >= cols then
        invalid_arg "Matrix.dense_of_cells: coordinate out of range";
      m.(i).(j) <- m.(i).(j) +. Value.to_float (Value.field c "v"))
    cells;
  m

let vector_cells x =
  Array.to_list x
  |> List.mapi (fun i v -> (i, v))
  |> List.filter_map (fun (i, v) ->
         if v = 0.0 then None
         else Some (Value.record [ ("i", Value.Int i); ("v", Value.Float v) ]))

let dense_of_vector_cells ~dim cells =
  let x = Array.make dim 0.0 in
  List.iter
    (fun c ->
      let i = Value.to_int (Value.field c "i") in
      if i < 0 || i >= dim then invalid_arg "Matrix.dense_of_vector_cells: index out of range";
      x.(i) <- x.(i) +. Value.to_float (Value.field c "v"))
    cells;
  x

(* ------------------------------------------------------------------ *)
(* Expression-level operations                                          *)
(* ------------------------------------------------------------------ *)

let scale k m =
  S.(
    for_
      [ gen "c" m ]
      ~yield:
        (record
           [ ("i", field (var "c") "i");
             ("j", field (var "c") "j");
             ("v", float_ k * field (var "c") "v") ]))

let transpose m =
  S.(
    for_
      [ gen "c" m ]
      ~yield:
        (record
           [ ("i", field (var "c") "j");
             ("j", field (var "c") "i");
             ("v", field (var "c") "v") ]))

(* sum the "v" fields of a cell group keyed by coordinate *)
let summed_by group_key cells yield_coords =
  S.(
    for_
      [ gen "g" (group_by group_key cells) ]
      ~yield:
        (record
           (yield_coords (field (var "g") "key")
           @ [ ("v", sum (map (lam "c" (fun c -> field c "v")) (field (var "g") "values"))) ])))

let add a b =
  summed_by
    (S.lam "c" (fun c -> S.tup [ S.field c "i"; S.field c "j" ]))
    (S.union a b)
    (fun key -> [ ("i", S.proj key 0); ("j", S.proj key 1) ])

let multiply a b =
  let products =
    S.(
      for_
        [ gen "x" a;
          gen "y" b;
          when_ (field (var "x") "j" = field (var "y") "i") ]
        ~yield:
          (record
             [ ("i", field (var "x") "i");
               ("j", field (var "y") "j");
               ("v", field (var "x") "v" * field (var "y") "v") ]))
  in
  summed_by
    (S.lam "c" (fun c -> S.tup [ S.field c "i"; S.field c "j" ]))
    products
    (fun key -> [ ("i", S.proj key 0); ("j", S.proj key 1) ])

let matvec a x =
  let products =
    S.(
      for_
        [ gen "c" a;
          gen "e" x;
          when_ (field (var "c") "j" = field (var "e") "i") ]
        ~yield:
          (record
             [ ("i", field (var "c") "i");
               ("v", field (var "c") "v" * field (var "e") "v") ]))
  in
  S.(
    for_
      [ gen "g" (group_by (lam "c" (fun c -> field c "i")) products) ]
      ~yield:
        (record
           [ ("i", field (var "g") "key");
             ("v", sum (map (lam "c" (fun c -> field c "v")) (field (var "g") "values"))) ]))

let frobenius_norm2 m =
  S.(sum (map (lam "c" (fun c -> field c "v" * field c "v")) m))

let trace m =
  S.(
    sum
      (map
         (lam "c" (fun c -> field c "v"))
         (with_filter (lam "c" (fun c -> field c "i" = field c "j")) m)))
