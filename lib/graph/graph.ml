module Value = Emma_value.Value
module Expr = Emma_lang.Expr
module S = Emma_lang.Surface

(* ------------------------------------------------------------------ *)
(* Value-level constructors                                             *)
(* ------------------------------------------------------------------ *)

let edge src dst = Value.record [ ("src", Value.Int src); ("dst", Value.Int dst) ]

let edges_of_list pairs = List.map (fun (s, d) -> edge s d) pairs

let edges_of_adjacency rows =
  List.concat_map
    (fun v ->
      let src = Value.to_int (Value.field v "id") in
      List.map (fun n -> edge src (Value.to_int n)) (Value.to_bag (Value.field v "neighbors")))
    rows

(* ------------------------------------------------------------------ *)
(* Expression-level operations                                          *)
(* ------------------------------------------------------------------ *)

let reverse edges =
  S.(
    for_
      [ gen "e" edges ]
      ~yield:(record [ ("src", field (var "e") "dst"); ("dst", field (var "e") "src") ]))

let undirect edges = S.distinct (S.union edges (reverse edges))

let degrees_by key_field edges =
  S.(
    for_
      [ gen "g" (group_by (lam "e" (fun e -> field e key_field)) edges) ]
      ~yield:
        (record
           [ ("id", field (var "g") "key"); ("degree", count (field (var "g") "values")) ]))

let out_degrees edges = degrees_by "src" edges
let in_degrees edges = degrees_by "dst" edges

let vertices edges =
  S.(
    distinct
      (union
         (for_ [ gen "e" edges ] ~yield:(field (var "e") "src"))
         (for_ [ gen "e" edges ] ~yield:(field (var "e") "dst"))))

let edge_count edges = S.count edges

let triangle_count edges =
  (* paths a→b→c with a closing edge c→a; the exists becomes a semi-join
     on the composite (src, dst) key *)
  S.(
    count
      (for_
         [ gen "e1" edges;
           gen "e2" edges;
           when_ (field (var "e1") "dst" = field (var "e2") "src");
           when_
             (exists
                (lam "e3" (fun e3 ->
                     (field e3 "src" = field (var "e2") "dst")
                     && (field e3 "dst" = field (var "e1") "src")))
                edges) ]
         ~yield:(tup [ field (var "e1") "src"; field (var "e1") "dst"; field (var "e2") "dst" ])))

let two_hop_neighbors edges =
  S.(
    distinct
      (for_
         [ gen "e1" edges;
           gen "e2" edges;
           when_ (field (var "e1") "dst" = field (var "e2") "src");
           when_ (not_ (field (var "e1") "src" = field (var "e2") "dst")) ]
         ~yield:
           (record [ ("src", field (var "e1") "src"); ("dst", field (var "e2") "dst") ])))

(* ------------------------------------------------------------------ *)
(* Oracles                                                              *)
(* ------------------------------------------------------------------ *)

let triangle_count_reference pairs =
  let edge_set = Hashtbl.create (List.length pairs) in
  List.iter (fun e -> Hashtbl.replace edge_set e ()) pairs;
  (* multiplicity-faithful: iterate over the edge *list* for e1 and e2 and
     count each closing pair once per occurrence, like the bag semantics *)
  List.fold_left
    (fun acc (a, b) ->
      List.fold_left
        (fun acc (b', c) ->
          if b = b' && Hashtbl.mem edge_set (c, a) then acc + 1 else acc)
        acc pairs)
    0 pairs

let out_degrees_reference pairs =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun (s, _) ->
      let r = Option.value (Hashtbl.find_opt counts s) ~default:0 in
      Hashtbl.replace counts s (r + 1))
    pairs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [] |> List.sort compare
