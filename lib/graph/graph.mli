(** Graph analytics on top of the DataBag API — with {!Emma_matrix.Matrix},
    the second domain library the paper's §7 names as Emma's growth path.
    Graphs are DataBags of edge records [{src; dst}]; every operation below
    is an ordinary Emma expression, so it flows through comprehension
    normalization, join extraction and fold-group fusion like any user
    program: triangle counting, for instance, becomes an equi-join plus a
    semi-join with a composite key. *)

module Expr = Emma_lang.Expr

(** {1 Value-level constructors} *)

val edge : int -> int -> Emma_value.Value.t
val edges_of_list : (int * int) list -> Emma_value.Value.t list

val edges_of_adjacency : Emma_value.Value.t list -> Emma_value.Value.t list
(** Convert the workload generators' [{id; neighbors}] records to edges. *)

(** {1 Expression-level operations over edge bags} *)

val reverse : Expr.expr -> Expr.expr
(** Swap every edge (element-wise map). *)

val undirect : Expr.expr -> Expr.expr
(** Symmetric closure with duplicate elimination. *)

val out_degrees : Expr.expr -> Expr.expr
(** [{id; degree}] per source vertex (fused group-count). Vertices with no
    outgoing edges are absent. *)

val in_degrees : Expr.expr -> Expr.expr

val vertices : Expr.expr -> Expr.expr
(** Distinct vertex ids occurring in any edge. *)

val edge_count : Expr.expr -> Expr.expr
(** Scalar: the number of edges. *)

val triangle_count : Expr.expr -> Expr.expr
(** Scalar: the number of directed triangles [a→b→c→a] closed by an edge.
    Built as a join of the edge bag with itself on [e1.dst == e2.src]
    followed by an exists check for the closing edge — the compiler turns
    the latter into a semi-join on the composite [(src, dst)] key. For an
    undirected (symmetrized) graph, each undirected triangle is counted
    six times. *)

val two_hop_neighbors : Expr.expr -> Expr.expr
(** Distinct [{src; dst}] pairs connected by a path of length exactly two
    (self-pairs excluded). *)

(** {1 Oracles (plain OCaml, for testing)} *)

val triangle_count_reference : (int * int) list -> int
val out_degrees_reference : (int * int) list -> (int * int) list
