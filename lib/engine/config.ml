(* First-class engine configuration: one record consolidating every
   execution knob that used to travel as nine separate optional
   arguments. The canonical home of [udf_mode] and [chunk_spec] (Exec
   re-exports both so existing [Engine.Interp] / [Engine.Chunk_auto]
   call sites keep compiling). *)

module Pool = Emma_util.Pool
module Trace = Emma_util.Trace
module Json = Emma_util.Json

type udf_mode = Interp | Compiled
type chunk_spec = Chunk_auto | Chunk_fixed of int

type t = {
  udf_mode : udf_mode;
  faults : Faults.t;
  checkpoint_every : int option;
  mem_budget : float option;
  spill : bool;
  max_inflight : int option;
  pool : Pool.t option;
  chunk : chunk_spec;
  trace : Trace.t option;
  domains : int option;
  plan_cache : int option;
}

let default =
  {
    udf_mode = Compiled;
    faults = Faults.none;
    checkpoint_every = None;
    mem_budget = None;
    spill = false;
    max_inflight = None;
    pool = None;
    chunk = Chunk_auto;
    trace = None;
    domains = None;
    plan_cache = Some 64;
  }

let with_udf_mode udf_mode t = { t with udf_mode }
let with_faults faults t = { t with faults }
let with_checkpoint_every checkpoint_every t = { t with checkpoint_every }
let with_mem_budget mem_budget t = { t with mem_budget }
let with_spill spill t = { t with spill }
let with_max_inflight max_inflight t = { t with max_inflight }
let with_pool pool t = { t with pool }
let with_chunk chunk t = { t with chunk }
let with_trace trace t = { t with trace }
let with_domains domains t = { t with domains }
let with_plan_cache plan_cache t = { t with plan_cache }

(* ------------------------------------------------------------------ *)
(* CLI-facing parsers. The error strings double as the one-line exit-2  *)
(* messages of every subcommand, so they are worded actionably and      *)
(* shared verbatim by run, bench and serve.                             *)
(* ------------------------------------------------------------------ *)

let parse_udf_mode s =
  match String.lowercase_ascii (String.trim s) with
  | "interp" | "interpreted" -> Ok Interp
  | "compiled" | "staged" -> Ok Compiled
  | _ ->
      Error
        (Printf.sprintf
           "--udf-mode %s is invalid: expected `interp' or `compiled'" s)

let parse_chunk s =
  match String.lowercase_ascii (String.trim s) with
  | "auto" -> Ok Chunk_auto
  | s -> (
      match int_of_string_opt s with
      | Some k when k >= 1 -> Ok (Chunk_fixed k)
      | Some k ->
          Error
            (Printf.sprintf
               "--chunk %d is invalid: a fixed chunk must hold at least 1 row \
                (or pass `auto' to size chunks from the cost model)"
               k)
      | None ->
          Error
            (Printf.sprintf
               "--chunk %s is invalid: expected `auto' or a row count >= 1" s))

let parse_plan_cache s =
  match String.lowercase_ascii (String.trim s) with
  | "off" | "0" -> Ok None
  | s -> (
      match int_of_string_opt s with
      | Some k when k >= 1 -> Ok (Some k)
      | _ ->
          Error
            (Printf.sprintf
               "--plan-cache %s is invalid: expected `off' or a capacity >= 1"
               s))

let of_cli ?(base = default) ?udf_mode ?chunk ?chaos_seed ?chaos_rates
    ?checkpoint_every ?mem_per_slot ?spill ?max_inflight ?domains ?plan_cache
    () =
  let ( let* ) = Result.bind in
  let* udf_mode =
    match udf_mode with
    | None -> Ok base.udf_mode
    | Some s -> parse_udf_mode s
  in
  let* chunk =
    match chunk with None -> Ok base.chunk | Some s -> parse_chunk s
  in
  let* faults =
    match (chaos_seed, chaos_rates) with
    | None, None -> Ok base.faults
    | None, Some _ ->
        Error
          "--chaos-rates has no effect without --chaos-seed: pass a seed to \
           turn chaos on"
    | Some seed, None -> Ok (Faults.seeded seed)
    | Some seed, Some spec -> (
        match Faults.rates_of_string spec with
        | Ok rates -> Ok (Faults.seeded ~rates seed)
        | Error e -> Error (Printf.sprintf "--chaos-rates %s" e))
  in
  let* checkpoint_every =
    match checkpoint_every with
    | None -> Ok base.checkpoint_every
    | Some k when k >= 1 -> Ok (Some k)
    | Some k ->
        Error
          (Printf.sprintf
             "--checkpoint-every %d is invalid: the checkpoint interval must \
              be at least 1 iteration (omit the flag to disable checkpointing)"
             k)
  in
  let* mem_budget =
    match mem_per_slot with
    | None -> Ok base.mem_budget
    | Some b when b > 0.0 && Float.is_finite b -> Ok (Some b)
    | Some b ->
        Error
          (Printf.sprintf
             "--mem-per-slot %g is invalid: the per-slot budget must be a \
              positive number of logical bytes (try e.g. --mem-per-slot 64e6)"
             b)
  in
  let* max_inflight =
    match max_inflight with
    | None -> Ok base.max_inflight
    | Some k when k >= 1 -> Ok (Some k)
    | Some k ->
        Error
          (Printf.sprintf
             "--max-inflight %d is invalid: at least one job must be allowed \
              in flight (omit the flag for unbounded admission)"
             k)
  in
  let* domains =
    match domains with
    | None -> Ok base.domains
    | Some d when d >= 1 -> Ok (Some d)
    | Some d ->
        Error
          (Printf.sprintf
             "--domains %d is invalid: at least 1 domain must run partition \
              work"
             d)
  in
  let* plan_cache =
    match plan_cache with
    | None -> Ok base.plan_cache
    | Some s -> parse_plan_cache s
  in
  Ok
    {
      base with
      udf_mode;
      chunk;
      faults;
      checkpoint_every;
      mem_budget;
      spill = (match spill with Some b -> b | None -> base.spill);
      max_inflight;
      domains;
      plan_cache;
    }

let udf_mode_to_string = function Interp -> "interp" | Compiled -> "compiled"

let chunk_to_string = function
  | Chunk_auto -> "auto"
  | Chunk_fixed k -> string_of_int k

let to_json t =
  let opt_int = function Some k -> Json.Int k | None -> Json.Null in
  let opt_float = function Some f -> Json.Float f | None -> Json.Null in
  Json.Obj
    [
      ("udf_mode", Json.Str (udf_mode_to_string t.udf_mode));
      ("chaos", Json.Bool (not (Faults.is_none t.faults)));
      ("checkpoint_every", opt_int t.checkpoint_every);
      ("mem_budget", opt_float t.mem_budget);
      ("spill", Json.Bool t.spill);
      ("max_inflight", opt_int t.max_inflight);
      ("pool", Json.Str (match t.pool with Some _ -> "custom" | None -> "default"));
      ("chunk", Json.Str (chunk_to_string t.chunk));
      ("trace", Json.Bool (match t.trace with Some tr -> Trace.enabled tr | None -> false));
      ("domains", opt_int t.domains);
      ( "plan_cache",
        match t.plan_cache with Some k -> Json.Int k | None -> Json.Str "off" );
    ]
