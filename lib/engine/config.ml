(* First-class engine configuration: one record consolidating every
   execution knob that used to travel as nine separate optional
   arguments. The canonical home of [udf_mode] and [chunk_spec] (Exec
   re-exports both so existing [Engine.Interp] / [Engine.Chunk_auto]
   call sites keep compiling). *)

module Pool = Emma_util.Pool
module Trace = Emma_util.Trace
module Json = Emma_util.Json

type udf_mode = Interp | Compiled
type chunk_spec = Chunk_auto | Chunk_fixed of int

type breaker_spec = { br_threshold : int; br_cooldown_s : float }

type t = {
  udf_mode : udf_mode;
  faults : Faults.t;
  checkpoint_every : int option;
  mem_budget : float option;
  spill : bool;
  max_inflight : int option;
  pool : Pool.t option;
  chunk : chunk_spec;
  trace : Trace.t option;
  domains : int option;
  plan_cache : int option;
  timeout_s : float option;
  deadline_s : float option;
  max_queue : int option;
  breaker : breaker_spec option;
  drain_after_s : float option;
  wal_dir : string option;
  wal_sync : Emma_util.Wal.sync_policy;
  snapshot_every : int option;
}

let default =
  {
    udf_mode = Compiled;
    faults = Faults.none;
    checkpoint_every = None;
    mem_budget = None;
    spill = false;
    max_inflight = None;
    pool = None;
    chunk = Chunk_auto;
    trace = None;
    domains = None;
    plan_cache = Some 64;
    timeout_s = None;
    deadline_s = None;
    max_queue = None;
    breaker = None;
    drain_after_s = None;
    wal_dir = None;
    wal_sync = Emma_util.Wal.Sync_none;
    snapshot_every = None;
  }

let with_udf_mode udf_mode t = { t with udf_mode }
let with_faults faults t = { t with faults }
let with_checkpoint_every checkpoint_every t = { t with checkpoint_every }
let with_mem_budget mem_budget t = { t with mem_budget }
let with_spill spill t = { t with spill }
let with_max_inflight max_inflight t = { t with max_inflight }
let with_pool pool t = { t with pool }
let with_chunk chunk t = { t with chunk }
let with_trace trace t = { t with trace }
let with_domains domains t = { t with domains }
let with_plan_cache plan_cache t = { t with plan_cache }
let with_timeout_s timeout_s t = { t with timeout_s }
let with_deadline_s deadline_s t = { t with deadline_s }
let with_max_queue max_queue t = { t with max_queue }
let with_breaker breaker t = { t with breaker }
let with_drain_after_s drain_after_s t = { t with drain_after_s }
let with_wal_dir wal_dir t = { t with wal_dir }
let with_wal_sync wal_sync t = { t with wal_sync }
let with_snapshot_every snapshot_every t = { t with snapshot_every }

(* ------------------------------------------------------------------ *)
(* CLI-facing parsers. The error strings double as the one-line exit-2  *)
(* messages of every subcommand, so they are worded actionably and      *)
(* shared verbatim by run, bench and serve.                             *)
(* ------------------------------------------------------------------ *)

let parse_udf_mode s =
  match String.lowercase_ascii (String.trim s) with
  | "interp" | "interpreted" -> Ok Interp
  | "compiled" | "staged" -> Ok Compiled
  | _ ->
      Error
        (Printf.sprintf
           "--udf-mode %s is invalid: expected `interp' or `compiled'" s)

let parse_chunk s =
  match String.lowercase_ascii (String.trim s) with
  | "auto" -> Ok Chunk_auto
  | s -> (
      match int_of_string_opt s with
      | Some k when k >= 1 -> Ok (Chunk_fixed k)
      | Some k ->
          Error
            (Printf.sprintf
               "--chunk %d is invalid: a fixed chunk must hold at least 1 row \
                (or pass `auto' to size chunks from the cost model)"
               k)
      | None ->
          Error
            (Printf.sprintf
               "--chunk %s is invalid: expected `auto' or a row count >= 1" s))

let parse_plan_cache s =
  match String.lowercase_ascii (String.trim s) with
  | "off" | "0" -> Ok None
  | s -> (
      match int_of_string_opt s with
      | Some k when k >= 1 -> Ok (Some k)
      | _ ->
          Error
            (Printf.sprintf
               "--plan-cache %s is invalid: expected `off' or a capacity >= 1"
               s))

(* "K" or "K:COOLDOWN_S": open a tenant's circuit after K consecutive
   bad outcomes, probe again after COOLDOWN_S simulated seconds (default
   30). "off" disables. *)
let parse_breaker s =
  let invalid () =
    Error
      (Printf.sprintf
         "--breaker %s is invalid: expected `off' or `K[:COOLDOWN_S]' with K \
          >= 1 consecutive failures and a cooldown > 0 (e.g. --breaker 3:30)"
         s)
  in
  match String.lowercase_ascii (String.trim s) with
  | "off" -> Ok None
  | spec -> (
      let k_str, cd_str =
        match String.index_opt spec ':' with
        | None -> (spec, "30")
        | Some i ->
            ( String.sub spec 0 i,
              String.sub spec (i + 1) (String.length spec - i - 1) )
      in
      match (int_of_string_opt k_str, float_of_string_opt cd_str) with
      | Some k, Some cd when k >= 1 && cd > 0.0 && Float.is_finite cd ->
          Ok (Some { br_threshold = k; br_cooldown_s = cd })
      | _ -> invalid ())

let of_cli ?(base = default) ?udf_mode ?chunk ?chaos_seed ?chaos_rates
    ?checkpoint_every ?mem_per_slot ?spill ?max_inflight ?domains ?plan_cache
    ?timeout ?deadline ?max_queue ?breaker ?drain_after ?wal ?wal_sync
    ?snapshot_every () =
  let ( let* ) = Result.bind in
  let* udf_mode =
    match udf_mode with
    | None -> Ok base.udf_mode
    | Some s -> parse_udf_mode s
  in
  let* chunk =
    match chunk with None -> Ok base.chunk | Some s -> parse_chunk s
  in
  let* faults =
    match (chaos_seed, chaos_rates) with
    | None, None -> Ok base.faults
    | None, Some _ ->
        Error
          "--chaos-rates has no effect without --chaos-seed: pass a seed to \
           turn chaos on"
    | Some seed, None -> Ok (Faults.seeded seed)
    | Some seed, Some spec -> (
        match Faults.rates_of_string spec with
        | Ok rates -> Ok (Faults.seeded ~rates seed)
        | Error e -> Error (Printf.sprintf "--chaos-rates %s" e))
  in
  let* checkpoint_every =
    match checkpoint_every with
    | None -> Ok base.checkpoint_every
    | Some k when k >= 1 -> Ok (Some k)
    | Some k ->
        Error
          (Printf.sprintf
             "--checkpoint-every %d is invalid: the checkpoint interval must \
              be at least 1 iteration (omit the flag to disable checkpointing)"
             k)
  in
  let* mem_budget =
    match mem_per_slot with
    | None -> Ok base.mem_budget
    | Some b when b > 0.0 && Float.is_finite b -> Ok (Some b)
    | Some b ->
        Error
          (Printf.sprintf
             "--mem-per-slot %g is invalid: the per-slot budget must be a \
              positive number of logical bytes (try e.g. --mem-per-slot 64e6)"
             b)
  in
  let* max_inflight =
    match max_inflight with
    | None -> Ok base.max_inflight
    | Some k when k >= 1 -> Ok (Some k)
    | Some k ->
        Error
          (Printf.sprintf
             "--max-inflight %d is invalid: at least one job must be allowed \
              in flight (omit the flag for unbounded admission)"
             k)
  in
  let* domains =
    match domains with
    | None -> Ok base.domains
    | Some d when d >= 1 -> Ok (Some d)
    | Some d ->
        Error
          (Printf.sprintf
             "--domains %d is invalid: at least 1 domain must run partition \
              work"
             d)
  in
  let* plan_cache =
    match plan_cache with
    | None -> Ok base.plan_cache
    | Some s -> parse_plan_cache s
  in
  let positive_seconds flag base = function
    | None -> Ok base
    | Some s when s > 0.0 && Float.is_finite s -> Ok (Some s)
    | Some s ->
        Error
          (Printf.sprintf
             "%s %g is invalid: expected a positive number of seconds" flag s)
  in
  let* timeout_s = positive_seconds "--timeout" base.timeout_s timeout in
  let* deadline_s = positive_seconds "--deadline" base.deadline_s deadline in
  let* max_queue =
    match max_queue with
    | None -> Ok base.max_queue
    | Some k when k >= 1 -> Ok (Some k)
    | Some k ->
        Error
          (Printf.sprintf
             "--max-queue %d is invalid: each tenant queue must hold at least \
              1 query (omit the flag for unbounded queues)"
             k)
  in
  let* breaker =
    match breaker with None -> Ok base.breaker | Some s -> parse_breaker s
  in
  let* drain_after_s =
    match drain_after with
    | None -> Ok base.drain_after_s
    | Some s when s >= 0.0 && Float.is_finite s -> Ok (Some s)
    | Some s ->
        Error
          (Printf.sprintf
             "--drain-after %g is invalid: expected a non-negative number of \
              seconds"
             s)
  in
  let* wal_dir =
    match wal with
    | None -> Ok base.wal_dir
    | Some "" -> Error "--wal expects a journal directory path"
    | Some dir -> Ok (Some dir)
  in
  let* wal_sync =
    match wal_sync with
    | None -> Ok base.wal_sync
    | Some s -> (
        if wal_dir = None then
          Error "--wal-sync has no effect without --wal: pass a journal directory"
        else
          match Emma_util.Wal.sync_policy_of_string s with
          | Ok p -> Ok p
          | Error e -> Error e)
  in
  let* snapshot_every =
    match snapshot_every with
    | None -> Ok base.snapshot_every
    | Some _ when wal_dir = None ->
        Error
          "--snapshot-every has no effect without --wal: pass a journal \
           directory"
    | Some k when k >= 1 -> Ok (Some k)
    | Some k ->
        Error
          (Printf.sprintf
             "--snapshot-every %d is invalid: the snapshot interval must be \
              at least 1 outcome record"
             k)
  in
  Ok
    {
      base with
      udf_mode;
      chunk;
      faults;
      checkpoint_every;
      mem_budget;
      spill = (match spill with Some b -> b | None -> base.spill);
      max_inflight;
      domains;
      plan_cache;
      timeout_s;
      deadline_s;
      max_queue;
      breaker;
      drain_after_s;
      wal_dir;
      wal_sync;
      snapshot_every;
    }

let udf_mode_to_string = function Interp -> "interp" | Compiled -> "compiled"

let chunk_to_string = function
  | Chunk_auto -> "auto"
  | Chunk_fixed k -> string_of_int k

let to_json t =
  let opt_int = function Some k -> Json.Int k | None -> Json.Null in
  let opt_float = function Some f -> Json.Float f | None -> Json.Null in
  Json.Obj
    [
      ("udf_mode", Json.Str (udf_mode_to_string t.udf_mode));
      ("chaos", Json.Bool (not (Faults.is_none t.faults)));
      ("checkpoint_every", opt_int t.checkpoint_every);
      ("mem_budget", opt_float t.mem_budget);
      ("spill", Json.Bool t.spill);
      ("max_inflight", opt_int t.max_inflight);
      ("pool", Json.Str (match t.pool with Some _ -> "custom" | None -> "default"));
      ("chunk", Json.Str (chunk_to_string t.chunk));
      ("trace", Json.Bool (match t.trace with Some tr -> Trace.enabled tr | None -> false));
      ("domains", opt_int t.domains);
      ( "plan_cache",
        match t.plan_cache with Some k -> Json.Int k | None -> Json.Str "off" );
      ("timeout_s", opt_float t.timeout_s);
      ("deadline_s", opt_float t.deadline_s);
      ("max_queue", opt_int t.max_queue);
      ( "breaker",
        match t.breaker with
        | None -> Json.Null
        | Some b ->
            Json.Obj
              [
                ("threshold", Json.Int b.br_threshold);
                ("cooldown_s", Json.Float b.br_cooldown_s);
              ] );
      ("drain_after_s", opt_float t.drain_after_s);
      ( "wal",
        match t.wal_dir with Some d -> Json.Str d | None -> Json.Null );
      ("wal_sync", Json.Str (Emma_util.Wal.sync_policy_to_string t.wal_sync));
      ("snapshot_every", opt_int t.snapshot_every);
    ]
