type t = {
  mutable sim_time_s : float;
  mutable shuffle_bytes : float;
  mutable broadcast_bytes : float;
  mutable dfs_read_bytes : float;
  mutable dfs_write_bytes : float;
  mutable collect_bytes : float;
  mutable parallelize_bytes : float;
  mutable spilled_bytes : float;
  mutable jobs : int;
  mutable stages : int;
  mutable recomputes : int;
  mutable cache_hits : int;
  mutable cache_losses : int;
  mutable udf_invocations : int;
  mutable wall_time_s : float;
  mutable par_stages : int;
  mutable par_tasks : int;
}

let create () =
  {
    sim_time_s = 0.0;
    shuffle_bytes = 0.0;
    broadcast_bytes = 0.0;
    dfs_read_bytes = 0.0;
    dfs_write_bytes = 0.0;
    collect_bytes = 0.0;
    parallelize_bytes = 0.0;
    spilled_bytes = 0.0;
    jobs = 0;
    stages = 0;
    recomputes = 0;
    cache_hits = 0;
    cache_losses = 0;
    udf_invocations = 0;
    wall_time_s = 0.0;
    par_stages = 0;
    par_tasks = 0;
  }

let add_time m s = m.sim_time_s <- m.sim_time_s +. s

let human_bytes b =
  if b >= 1e12 then Printf.sprintf "%.2f TB" (b /. 1e12)
  else if b >= 1e9 then Printf.sprintf "%.2f GB" (b /. 1e9)
  else if b >= 1e6 then Printf.sprintf "%.2f MB" (b /. 1e6)
  else if b >= 1e3 then Printf.sprintf "%.2f KB" (b /. 1e3)
  else Printf.sprintf "%.0f B" b

let to_rows m =
  [
    ("sim time", Printf.sprintf "%.1f s" m.sim_time_s);
    ("shuffled", human_bytes m.shuffle_bytes);
    ("broadcast", human_bytes m.broadcast_bytes);
    ("dfs read", human_bytes m.dfs_read_bytes);
    ("dfs write", human_bytes m.dfs_write_bytes);
    ("collected", human_bytes m.collect_bytes);
    ("parallelized", human_bytes m.parallelize_bytes);
    ("spilled", human_bytes m.spilled_bytes);
    ("jobs", string_of_int m.jobs);
    ("stages", string_of_int m.stages);
    ("recomputes", string_of_int m.recomputes);
    ("cache hits", string_of_int m.cache_hits);
    ("cache losses", string_of_int m.cache_losses);
    ("wall time", Printf.sprintf "%.3f s" m.wall_time_s);
    ("par stages", string_of_int m.par_stages);
    ("par tasks", string_of_int m.par_tasks);
  ]

let pp ppf m =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.list ~sep:Fmt.cut (fun ppf (k, v) -> Fmt.pf ppf "%-14s %s" k v))
    (to_rows m)
