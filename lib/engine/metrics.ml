type t = {
  mutable sim_time_s : float;
  mutable shuffle_bytes : float;
  mutable broadcast_bytes : float;
  mutable dfs_read_bytes : float;
  mutable dfs_write_bytes : float;
  mutable collect_bytes : float;
  mutable parallelize_bytes : float;
  mutable spilled_bytes : float;
  mutable jobs : int;
  mutable stages : int;
  mutable recomputes : int;
  mutable cache_hits : int;
  mutable cache_losses : int;
  mutable udf_invocations : int;
  mutable wall_time_s : float;
  mutable par_stages : int;
  mutable par_tasks : int;
  mutable par_chunks : int;
  mutable par_steals : int;
  mutable par_steal_misses : int;
  mutable retries : int;
  mutable fetch_failures : int;
  mutable executor_losses : int;
  mutable blacklisted_nodes : int;
  mutable recomputed_partitions : int;
  mutable speculative_launches : int;
  mutable speculative_wins : int;
  mutable checkpoints : int;
  mutable checkpoint_bytes : float;
  mutable loop_restores : int;
  mutable mem_peak_bytes : float;
  mutable mem_spills : int;
  mutable mem_spill_bytes : float;
  mutable oom_kills : int;
  mutable cache_evictions : int;
  mutable evicted_bytes : float;
  mutable jobs_queued : int;
  mutable queue_wait_s : float;
  mutable checkpoint_corruptions : int;
  mutable plan_cache_hits : int;
  mutable plan_cache_misses : int;
  mutable plan_cache_evictions : int;
  mutable cancellations : int;
  mutable wal_appends : int;
  mutable wal_bytes : float;
  mutable wal_fsyncs : int;
  mutable recovery_replayed : int;
}

let create () =
  {
    sim_time_s = 0.0;
    shuffle_bytes = 0.0;
    broadcast_bytes = 0.0;
    dfs_read_bytes = 0.0;
    dfs_write_bytes = 0.0;
    collect_bytes = 0.0;
    parallelize_bytes = 0.0;
    spilled_bytes = 0.0;
    jobs = 0;
    stages = 0;
    recomputes = 0;
    cache_hits = 0;
    cache_losses = 0;
    udf_invocations = 0;
    wall_time_s = 0.0;
    par_stages = 0;
    par_tasks = 0;
    par_chunks = 0;
    par_steals = 0;
    par_steal_misses = 0;
    retries = 0;
    fetch_failures = 0;
    executor_losses = 0;
    blacklisted_nodes = 0;
    recomputed_partitions = 0;
    speculative_launches = 0;
    speculative_wins = 0;
    checkpoints = 0;
    checkpoint_bytes = 0.0;
    loop_restores = 0;
    mem_peak_bytes = 0.0;
    mem_spills = 0;
    mem_spill_bytes = 0.0;
    oom_kills = 0;
    cache_evictions = 0;
    evicted_bytes = 0.0;
    jobs_queued = 0;
    queue_wait_s = 0.0;
    checkpoint_corruptions = 0;
    plan_cache_hits = 0;
    plan_cache_misses = 0;
    plan_cache_evictions = 0;
    cancellations = 0;
    wal_appends = 0;
    wal_bytes = 0.0;
    wal_fsyncs = 0;
    recovery_replayed = 0;
  }

let add_time m s = m.sim_time_s <- m.sim_time_s +. s

let human_bytes b =
  if b >= 1e12 then Printf.sprintf "%.2f TB" (b /. 1e12)
  else if b >= 1e9 then Printf.sprintf "%.2f GB" (b /. 1e9)
  else if b >= 1e6 then Printf.sprintf "%.2f MB" (b /. 1e6)
  else if b >= 1e3 then Printf.sprintf "%.2f KB" (b /. 1e3)
  else Printf.sprintf "%.0f B" b

(* Formatting is pinned for golden files and machine-readable reports:
   OCaml's Printf always formats with the C locale's dot decimal point
   (it never consults the process locale), and the precision of every
   float cell is fixed — %.1f for simulated seconds, %.6f for host wall
   time — so rendered output is byte-stable across hosts. *)
let to_rows m =
  [
    ("sim time", Printf.sprintf "%.1f s" m.sim_time_s);
    ("shuffled", human_bytes m.shuffle_bytes);
    ("broadcast", human_bytes m.broadcast_bytes);
    ("dfs read", human_bytes m.dfs_read_bytes);
    ("dfs write", human_bytes m.dfs_write_bytes);
    ("collected", human_bytes m.collect_bytes);
    ("parallelized", human_bytes m.parallelize_bytes);
    ("spilled", human_bytes m.spilled_bytes);
    ("jobs", string_of_int m.jobs);
    ("stages", string_of_int m.stages);
    ("recomputes", string_of_int m.recomputes);
    ("cache hits", string_of_int m.cache_hits);
    ("cache losses", string_of_int m.cache_losses);
    ("wall time", Printf.sprintf "%.6f s" m.wall_time_s);
    ("par stages", string_of_int m.par_stages);
    ("par tasks", string_of_int m.par_tasks);
    ("par chunks", string_of_int m.par_chunks);
    ("par steals", string_of_int m.par_steals);
    ("par steal misses", string_of_int m.par_steal_misses);
    ("retries", string_of_int m.retries);
    ("fetch failures", string_of_int m.fetch_failures);
    ("executor losses", string_of_int m.executor_losses);
    ("blacklisted", string_of_int m.blacklisted_nodes);
    ("recomputed parts", string_of_int m.recomputed_partitions);
    ("spec launches", string_of_int m.speculative_launches);
    ("spec wins", string_of_int m.speculative_wins);
    ("checkpoints", string_of_int m.checkpoints);
    ("checkpoint bytes", human_bytes m.checkpoint_bytes);
    ("loop restores", string_of_int m.loop_restores);
    ("mem peak", human_bytes m.mem_peak_bytes);
    ("mem spills", string_of_int m.mem_spills);
    ("mem spill bytes", human_bytes m.mem_spill_bytes);
    ("oom kills", string_of_int m.oom_kills);
    ("cache evictions", string_of_int m.cache_evictions);
    ("evicted bytes", human_bytes m.evicted_bytes);
    ("jobs queued", string_of_int m.jobs_queued);
    ("queue wait", Printf.sprintf "%.1f s" m.queue_wait_s);
    ("ckpt corruptions", string_of_int m.checkpoint_corruptions);
    ("plan hits", string_of_int m.plan_cache_hits);
    ("plan misses", string_of_int m.plan_cache_misses);
    ("plan evictions", string_of_int m.plan_cache_evictions);
    ("cancellations", string_of_int m.cancellations);
    ("wal appends", string_of_int m.wal_appends);
    ("wal bytes", human_bytes m.wal_bytes);
    ("wal fsyncs", string_of_int m.wal_fsyncs);
    ("recovery replayed", string_of_int m.recovery_replayed);
  ]

let pp ppf m =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.list ~sep:Fmt.cut (fun ppf (k, v) -> Fmt.pf ppf "%-14s %s" k v))
    (to_rows m)

module Json = Emma_util.Json

let to_json m =
  Json.Obj
    [
      ("sim_time_s", Json.Float m.sim_time_s);
      ("shuffle_bytes", Json.Float m.shuffle_bytes);
      ("broadcast_bytes", Json.Float m.broadcast_bytes);
      ("dfs_read_bytes", Json.Float m.dfs_read_bytes);
      ("dfs_write_bytes", Json.Float m.dfs_write_bytes);
      ("collect_bytes", Json.Float m.collect_bytes);
      ("parallelize_bytes", Json.Float m.parallelize_bytes);
      ("spilled_bytes", Json.Float m.spilled_bytes);
      ("jobs", Json.Int m.jobs);
      ("stages", Json.Int m.stages);
      ("recomputes", Json.Int m.recomputes);
      ("cache_hits", Json.Int m.cache_hits);
      ("cache_losses", Json.Int m.cache_losses);
      ("udf_invocations", Json.Int m.udf_invocations);
      ("wall_time_s", Json.Float m.wall_time_s);
      ("par_stages", Json.Int m.par_stages);
      ("par_tasks", Json.Int m.par_tasks);
      ("par_chunks", Json.Int m.par_chunks);
      ("par_steals", Json.Int m.par_steals);
      ("par_steal_misses", Json.Int m.par_steal_misses);
      ("retries", Json.Int m.retries);
      ("fetch_failures", Json.Int m.fetch_failures);
      ("executor_losses", Json.Int m.executor_losses);
      ("blacklisted_nodes", Json.Int m.blacklisted_nodes);
      ("recomputed_partitions", Json.Int m.recomputed_partitions);
      ("speculative_launches", Json.Int m.speculative_launches);
      ("speculative_wins", Json.Int m.speculative_wins);
      ("checkpoints", Json.Int m.checkpoints);
      ("checkpoint_bytes", Json.Float m.checkpoint_bytes);
      ("loop_restores", Json.Int m.loop_restores);
      ("mem_peak_bytes", Json.Float m.mem_peak_bytes);
      ("mem_spills", Json.Int m.mem_spills);
      ("mem_spill_bytes", Json.Float m.mem_spill_bytes);
      ("oom_kills", Json.Int m.oom_kills);
      ("cache_evictions", Json.Int m.cache_evictions);
      ("evicted_bytes", Json.Float m.evicted_bytes);
      ("jobs_queued", Json.Int m.jobs_queued);
      ("queue_wait_s", Json.Float m.queue_wait_s);
      ("checkpoint_corruptions", Json.Int m.checkpoint_corruptions);
      ("plan_cache_hits", Json.Int m.plan_cache_hits);
      ("plan_cache_misses", Json.Int m.plan_cache_misses);
      ("plan_cache_evictions", Json.Int m.plan_cache_evictions);
      ("cancellations", Json.Int m.cancellations);
      ("wal_appends", Json.Int m.wal_appends);
      ("wal_bytes", Json.Float m.wal_bytes);
      ("wal_fsyncs", Json.Int m.wal_fsyncs);
      ("recovery_replayed", Json.Int m.recovery_replayed);
    ]

let to_json_string m = Json.to_string (to_json m)
