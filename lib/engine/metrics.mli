(** Cost accounting for a simulated run. All byte quantities are logical
    (physical × [data_scale]); [sim_time_s] is the simulated wall-clock the
    cost model produces, which the experiment harness reports in place of
    the paper's measured runtimes. *)

type t = {
  mutable sim_time_s : float;
  mutable shuffle_bytes : float;
  mutable broadcast_bytes : float;  (** total bytes shipped to workers *)
  mutable dfs_read_bytes : float;
  mutable dfs_write_bytes : float;
  mutable collect_bytes : float;  (** DFL → DRV motion *)
  mutable parallelize_bytes : float;  (** DRV → DFL motion *)
  mutable spilled_bytes : float;
  mutable jobs : int;  (** dataflows submitted *)
  mutable stages : int;  (** operators executed *)
  mutable recomputes : int;  (** lineage re-executions of a bound dataflow *)
  mutable cache_hits : int;
  mutable cache_losses : int;  (** injected failures recovered via lineage *)
  mutable udf_invocations : int;  (** physical count, not scaled *)
  mutable wall_time_s : float;
      (** real elapsed time of the run on the host — the only field that is
          allowed to vary with the domain count (all cost-model fields above
          are bit-identical whether partitions run on 1 domain or many) *)
  mutable par_stages : int;  (** operator barriers executed on the domain pool *)
  mutable par_tasks : int;  (** partition tasks dispatched through the pool *)
  mutable par_chunks : int;
      (** extra chunk tasks produced by adaptive chunking, beyond one task
          per partition; varies with the chunk policy and domain count *)
  mutable par_steals : int;
      (** pool tasks claimed from another domain's deque during this
          engine's barriers; scheduling-dependent, like [wall_time_s] *)
  mutable par_steal_misses : int;
      (** full claim sweeps that found every deque empty (idle probes) *)
  mutable retries : int;
      (** failed task attempts injected by the fault plan and re-run
          (each charged backoff + rescheduling) *)
  mutable fetch_failures : int;  (** shuffle-fetch chunks lost and re-fetched *)
  mutable executor_losses : int;  (** node deaths injected at barriers *)
  mutable blacklisted_nodes : int;  (** nodes blacklisted after repeated failures *)
  mutable recomputed_partitions : int;
      (** partitions of lost cached/materialized results rebuilt through
          lineage re-execution *)
  mutable speculative_launches : int;  (** speculative copies of straggler tasks *)
  mutable speculative_wins : int;
      (** speculative copies that finished before the straggler *)
  mutable checkpoints : int;  (** loop-state checkpoints written *)
  mutable checkpoint_bytes : float;  (** logical bytes of loop state checkpointed *)
  mutable loop_restores : int;
      (** driver-loop restarts from a checkpoint (or from loop entry) *)
  mutable mem_peak_bytes : float;
      (** largest per-slot operator-state reservation seen by {!Memman}
          (logical bytes); tracked even when no budget is set *)
  mutable mem_spills : int;
      (** slots that overflowed their budget and spilled operator state *)
  mutable mem_spill_bytes : float;
      (** logical bytes of operator state spilled to local disk under
          memory pressure (separate channel from [spilled_bytes], which
          counts the profile's own group-by spill behaviour) *)
  mutable oom_kills : int;
      (** attempts killed for exceeding the budget with spilling disabled
          (genuine overflows and chaos-injected kills) and retried at
          reduced parallelism *)
  mutable cache_evictions : int;
      (** [Mem]-cached bags dropped by the LRU evictor to admit new ones *)
  mutable evicted_bytes : float;  (** logical bytes of evicted cached bags *)
  mutable jobs_queued : int;
      (** job submissions delayed by admission control ([max_inflight]) *)
  mutable queue_wait_s : float;
      (** total simulated seconds jobs spent queued before admission *)
  mutable checkpoint_corruptions : int;
      (** loop checkpoints whose CRC32 failed verification on restore and
          were skipped in favour of an older good one *)
  mutable plan_cache_hits : int;
      (** session plan-cache hits: submissions whose compiled plan was
          reused, skipping the whole compile pipeline (set by
          [Emma.Session.submit], not the engine) *)
  mutable plan_cache_misses : int;
      (** submissions that compiled cold and populated the plan cache *)
  mutable plan_cache_evictions : int;
      (** cached plans dropped by the LRU evictor on this submission's
          store *)
  mutable cancellations : int;
      (** cooperative cancellations observed by this run: 1 when the run
          ended in a classified [Cancelled] outcome (deadline exceeded or
          an explicit {!Cancel} request), 0 otherwise *)
  mutable wal_appends : int;
      (** journal records appended on behalf of this submission (its
          dispatch and outcome records) when serve runs with [--wal] *)
  mutable wal_bytes : float;
      (** framed journal bytes written for this submission *)
  mutable wal_fsyncs : int;
      (** fsync calls attributable to this submission under the active
          [--wal-sync] policy *)
  mutable recovery_replayed : int;
      (** 1 when this outcome was rebuilt from the durable journal during
          [--recover] instead of re-executing the query, 0 otherwise *)
}

val create : unit -> t
val add_time : t -> float -> unit
val pp : Format.formatter -> t -> unit

val to_rows : t -> (string * string) list
(** Key/value rendering for benchmark tables. Formatting is pinned (fixed
    precisions; OCaml's [Printf] always uses the C locale's dot decimal
    point), so rendered rows are byte-stable across hosts. *)

val to_json : t -> Emma_util.Json.t
(** Every field, under its record name, as a flat JSON object — the
    machine-readable run report the bench harness emits next to each
    table. Floats are rendered with pinned [%.6f] precision by
    {!Emma_util.Json.to_string}. *)

val to_json_string : t -> string
