module Value = Emma_value.Value
module Plan = Emma_dataflow.Plan
module Cprog = Emma_dataflow.Cprog
module Eval = Emma_lang.Eval
module Compile = Emma_lang.Compile
module Expr = Emma_lang.Expr
module Strset = Emma_util.Strset
module Pool = Emma_util.Pool
module Trace = Emma_util.Trace
module Crc32 = Emma_util.Crc32

exception Engine_failure of string
exception Engine_timeout of float
exception Engine_cancelled of float * string

type location = Mem | Dfs

(* How worker-side UDF bodies execute. [Interp] walks the [Expr] tree with
   {!Eval} per tuple; [Compiled] stages each body once through
   {!Emma_lang.Compile} and runs the resulting closure. The choice affects
   wall-clock only: both paths share the same [worker_env] cost charging
   and the same [bump_udf] tally, so every cost-model field is
   bit-identical between modes (differentially tested). Defined in
   {!Config} (the knob record) and re-exported here. *)
type udf_mode = Config.udf_mode = Interp | Compiled

(* Chunk-size policy for the adaptive-chunking barriers ([par_chunked]):
   [Chunk_auto] sizes chunks from the cost model's per-row estimate with a
   granularity floor; [Chunk_fixed k] pins k physical rows per chunk (the
   CLI's [--chunk N]). Chunking only splits order-preserving list
   homomorphisms and reassembles chunk outputs in order, so results and
   every cost-model metric are bit-identical for every policy — only wall
   time and the par_* counters move. *)
type chunk_spec = Config.chunk_spec = Chunk_auto | Chunk_fixed of int

(* Mutable chaos bookkeeping. Sequence counters number the injection
   points in coordinator execution order — the same order at any domain
   count, which is what makes injection domain-invariant. *)
type chaos = {
  mutable barrier_seq : int;  (* par_run barriers (task + executor faults) *)
  mutable cpu_stage_seq : int;  (* charge_local_cpu calls (stragglers) *)
  mutable shuffle_seq : int;  (* shuffles (fetch failures) *)
  mutable boundary_seq : int;  (* driver-loop iteration boundaries *)
  mutable reserve_seq : int;  (* memory reservations (OOM kills) *)
  mutable ckpt_seq : int;  (* loop checkpoints written (corruption) *)
  mutable loss_epoch : int;
      (* bumped on every executor loss: memory-cached results materialized
         in an older epoch are gone on their next use *)
  node_failures : int array;  (* injected task failures per node *)
  blacklisted : bool array;
}

type t = {
  cluster : Cluster.t;
  profile : Cluster.profile;
  metrics : Metrics.t;
  eval_ctx : Eval.ctx;
  pool : Pool.t;
      (* domain pool running per-partition operator work; shuffles, cost
         charging and the driver stay on the coordinator domain *)
  chunk : chunk_spec;  (* chunk-size policy for homomorphic barriers *)
  mutable steal_seen : Pool.stats;
      (* pool steal counters at the last accounted barrier; diffed into
         par_steals/par_steal_misses after each barrier (the pool may be
         shared, so only deltas are attributable to this engine) *)
  timeout_s : float option;
  deadline_s : float option;
      (* per-query latency budget on the same simulated clock: exceeding
         it raises [Engine_cancelled] (a service decision) rather than
         [Engine_timeout] (an operator limit) *)
  cancel : Cancel.t option;
      (* cooperative cancellation token, polled at the cost-charging
         safepoints and at every partition-dispatch barrier *)
  mutable job_depth : int;
      (* > 0 while a dataflow is executing: nested lineage recomputations
         belong to the enclosing job and are not separate submissions *)
  mutable iteration_rerun : bool;
      (* inside the second or later iteration of a driver loop on an
         engine with native iteration support: job submissions reuse the
         deployed dataflow and pay a reduced overhead *)
  udf_mode : udf_mode;
      (* interpreted (oracle) or staged-compiled per-tuple UDF execution *)
  faults : Faults.t;
      (* deterministic fault plan: decides task failures, executor losses,
         fetch failures, stragglers, loop losses, OOM kills and checkpoint
         corruptions at the injection points numbered by [chaos] *)
  chaos : chaos;
  memman : Memman.t;
      (* coordinator-side memory accountant: per-slot budget verdicts for
         state-building operators, the LRU registry of Mem-cached bags,
         and the job admission gate. Unbounded by default — pure peak
         observation *)
  checkpoint_every : int option;
      (* checkpoint driver-loop state every k iterations, so an injected
         loop loss restarts from the last checkpoint instead of iteration
         0 *)
  mutable cache_hit_counter : int;
  mutable trace : trace_event list;
      (* chronological record of executed operators, most recent first *)
  tracer : Trace.t;
      (* structured span sink (job/stage/partition-task spans, data-motion
         counters). Never consulted by cost charging: with the tracer on or
         off, results and every cost-model field are bit-identical — only
         observability output differs (property-tested in test_trace.ml) *)
}

and trace_event = {
  ev_op : string;
  ev_records : float;  (* logical input records *)
  ev_bytes : float;  (* logical input bytes *)
  ev_clock : float;  (* simulated clock when the operator started *)
}

type dval =
  | Dscalar of Eval.rvalue
  | Dbag of handle
  | Dstateful of state_handle

and handle = {
  h_plan : Plan.t;
  h_env : env;  (* lineage snapshot: the bindings visible at creation *)
  h_cache : location option;
      (* compiled with a Cache root: materialize on first use, like
         Spark's lazy .cache() *)
  mutable h_mat : (Pdata.t * location) option;
  mutable h_memid : int option;
      (* registry id in [Memman] while this handle's Mem-cached copy is
         admitted; [None] when ungoverned, evicted, or not cached *)
  mutable h_epoch : int;
      (* [chaos.loss_epoch] at materialization time: a memory-resident
         copy from an older epoch was on a node that has since died *)
  mutable h_collected : (Value.t list * float * float) option;
      (* once a bag has been collected, the driver owns the value: further
         driver-side uses (e.g. re-broadcasting it next iteration) do not
         re-run the dataflow — this is what cuts Spark's lineage at the
         collect/broadcast boundary of iterative programs *)
}

and state_handle = {
  s_key : Plan.udf;
  s_keyfn : Value.t -> Value.t;
  s_parts : (Value.t, Value.t ref) Hashtbl.t array;
  s_rmult : float;
  s_bmult : float;
}

and env = (string * dval) list

type out = Obag of Pdata.t | Oscalar of Value.t | Ostateful of state_handle

let create ?timeout_s ?cancel ?(config = Config.default) ?udf_mode ?faults
    ?checkpoint_every ?mem_budget ?spill ?max_inflight ?pool ?chunk ?trace
    ~cluster ~profile eval_ctx =
  (* per-knob optional args are deprecated shims: when given they override
     the corresponding [config] field, preserving pre-Config call sites *)
  let timeout_s =
    match timeout_s with Some _ as s -> s | None -> config.Config.timeout_s
  in
  let udf_mode = Option.value udf_mode ~default:config.Config.udf_mode in
  let faults = Option.value faults ~default:config.Config.faults in
  let checkpoint_every =
    match checkpoint_every with
    | Some _ as k -> k
    | None -> config.Config.checkpoint_every
  in
  let mem_budget =
    match mem_budget with Some _ as b -> b | None -> config.Config.mem_budget
  in
  let spill = Option.value spill ~default:config.Config.spill in
  let max_inflight =
    match max_inflight with
    | Some _ as k -> k
    | None -> config.Config.max_inflight
  in
  let chunk = Option.value chunk ~default:config.Config.chunk in
  let trace =
    match trace with Some _ as tr -> tr | None -> config.Config.trace
  in
  let pool =
    match pool with
    | Some p -> p
    | None -> (
        match config.Config.pool with Some p -> p | None -> Pool.default ())
  in
  { cluster;
    profile;
    metrics = Metrics.create ();
    eval_ctx;
    pool;
    chunk;
    steal_seen = Pool.stats pool;
    timeout_s;
    deadline_s = config.Config.deadline_s;
    cancel;
    job_depth = 0;
    iteration_rerun = false;
    udf_mode;
    faults;
    chaos =
      { barrier_seq = 0;
        cpu_stage_seq = 0;
        shuffle_seq = 0;
        boundary_seq = 0;
        reserve_seq = 0;
        ckpt_seq = 0;
        loss_epoch = 0;
        node_failures = Array.make (max 1 cluster.Cluster.nodes) 0;
        blacklisted = Array.make (max 1 cluster.Cluster.nodes) false };
    memman =
      Memman.create ?budget:mem_budget ~spill ?max_inflight
        ~slots_per_node:cluster.Cluster.slots_per_node ~dop:(Cluster.dop cluster) ();
    checkpoint_every =
      (match checkpoint_every with Some k when k >= 1 -> Some k | _ -> None);
    cache_hit_counter = 0;
    trace = [];
    tracer = (match trace with Some tr -> tr | None -> Trace.global ()) }

let metrics t = t.metrics
let trace t = List.rev t.trace

let note_op t op pd =
  t.trace <-
    { ev_op = op;
      ev_records = Pdata.logical_records pd;
      ev_bytes = Pdata.logical_bytes pd;
      ev_clock = t.metrics.Metrics.sim_time_s }
    :: t.trace

(* ------------------------------------------------------------------ *)
(* Cost charging                                                        *)
(* ------------------------------------------------------------------ *)

(* Cooperative-interrupt safepoint. Checked after every cost charge and
   before every partition-dispatch barrier — the same choke points the
   timeout uses, so cancellation and deadlines also land mid-recovery and
   mid-admission-wait. Precedence when several limits trip on the same
   charge: timeout (the operator limit) over deadline over an external
   cancel request. *)
let check_interrupts t =
  (match t.timeout_s with
  | Some limit when t.metrics.Metrics.sim_time_s > limit ->
      raise (Engine_timeout t.metrics.Metrics.sim_time_s)
  | _ -> ());
  (match t.deadline_s with
  | Some d when t.metrics.Metrics.sim_time_s > d ->
      t.metrics.Metrics.cancellations <- t.metrics.Metrics.cancellations + 1;
      raise
        (Engine_cancelled
           ( t.metrics.Metrics.sim_time_s,
             Printf.sprintf "deadline of %g s exceeded" d ))
  | _ -> ());
  match t.cancel with
  | Some c when Cancel.is_requested c ->
      t.metrics.Metrics.cancellations <- t.metrics.Metrics.cancellations + 1;
      raise (Engine_cancelled (t.metrics.Metrics.sim_time_s, Cancel.reason c))
  | _ -> ()

let charge t secs =
  Metrics.add_time t.metrics secs;
  check_interrupts t

let dop t = Cluster.dop t.cluster

let charge_stage t =
  let d = float_of_int (dop t) in
  t.metrics.Metrics.stages <- t.metrics.Metrics.stages + 1;
  charge t
    ((t.profile.Cluster.sched_linear_s *. d) +. (t.profile.Cluster.sched_quad_s *. d *. d))

let list_bytes vs =
  List.fold_left (fun acc v -> acc +. float_of_int (Value.byte_size v)) 0.0 vs

(* ------------------------------------------------------------------ *)
(* Fault injection (chaos)                                              *)
(* ------------------------------------------------------------------ *)

(* All injection decisions are made HERE, on the coordinator, before any
   partition work is dispatched — never inside worker tasks. Together with
   the pure keyed draws in [Faults] this is what makes a fault plan
   reproducible and domain-count invariant: the same plan injects the same
   failures and charges the same recovery costs whether partitions run on
   1 domain or 16. Recovery time flows through [charge], so a configured
   [timeout_s] fires mid-recovery exactly like it does mid-computation. *)

let chaos_active t = not (Faults.is_none t.faults)
let recovery t = t.cluster.Cluster.recovery

let recovery_instant t name args =
  if Trace.enabled t.tracer then Trace.instant t.tracer ~cat:"recovery" ~args name

(* Task-attempt failures and executor loss, decided at every operator
   barrier. Attempt [a] of partition [part] is placed on node
   [(part + a) mod nodes]; once a node is blacklisted the scheduler stops
   placing attempts there, so its injected failures never materialize —
   that avoidance is the payoff of blacklisting. *)
let inject_barrier_faults t n =
  if chaos_active t && n > 0 then begin
    t.chaos.barrier_seq <- t.chaos.barrier_seq + 1;
    let barrier = t.chaos.barrier_seq in
    let rc = recovery t in
    let nodes = Array.length t.chaos.node_failures in
    (* Executor loss: a node dies at this barrier. The epoch bump
       invalidates memory-cached partitions materialized before the loss
       (recovered through lineage on their next use; DFS copies survive),
       and the node's in-flight tasks of this barrier fail once and are
       rescheduled elsewhere. *)
    (match Faults.executor_loss t.faults ~barrier ~nodes with
    | None -> ()
    | Some node ->
        t.metrics.Metrics.executor_losses <- t.metrics.Metrics.executor_losses + 1;
        t.chaos.loss_epoch <- t.chaos.loss_epoch + 1;
        let inflight = ref 0 in
        for part = 0 to n - 1 do
          if part mod nodes = node then incr inflight
        done;
        if !inflight > 0 then begin
          t.metrics.Metrics.retries <- t.metrics.Metrics.retries + !inflight;
          charge t
            (rc.Cluster.retry_backoff_s
            +. (float_of_int !inflight *. t.profile.Cluster.sched_linear_s))
        end;
        recovery_instant t "executor_loss"
          [ ("barrier", Trace.A_int barrier);
            ("node", Trace.A_int node);
            ("inflight", Trace.A_int !inflight) ]);
    (* Task-attempt failures: each failed attempt is retried after an
       exponential backoff; repeated failures blacklist the node. Seeded
       plans are capped below the attempt bound (the scheduler eventually
       finds a healthy node), so only scripted plans can fail the job. *)
    for part = 0 to n - 1 do
      let injected =
        Faults.task_failures t.faults ~barrier ~part ~cap:(rc.Cluster.max_task_attempts - 1)
      in
      if injected > 0 then begin
        let real = ref 0 in
        for a = 0 to injected - 1 do
          let node = (part + a) mod nodes in
          if not t.chaos.blacklisted.(node) then begin
            incr real;
            t.metrics.Metrics.retries <- t.metrics.Metrics.retries + 1;
            charge t
              ((rc.Cluster.retry_backoff_s *. (2.0 ** float_of_int (!real - 1)))
              +. t.profile.Cluster.sched_linear_s);
            t.chaos.node_failures.(node) <- t.chaos.node_failures.(node) + 1;
            if t.chaos.node_failures.(node) = rc.Cluster.blacklist_after then begin
              t.chaos.blacklisted.(node) <- true;
              t.metrics.Metrics.blacklisted_nodes <-
                t.metrics.Metrics.blacklisted_nodes + 1;
              recovery_instant t "blacklist" [ ("node", Trace.A_int node) ]
            end
          end
        done;
        if !real > 0 then
          recovery_instant t "task_retries"
            [ ("barrier", Trace.A_int barrier);
              ("partition", Trace.A_int part);
              ("attempts", Trace.A_int !real) ];
        if !real >= rc.Cluster.max_task_attempts then
          raise
            (Engine_failure
               (Printf.sprintf "task for partition %d failed %d times (max %d attempts)"
                  part !real rc.Cluster.max_task_attempts))
      end
    done
  end

(* Stragglers: a slot runs its task at [slowdown]×. The barrier waits for
   the slowest task, so the stage grows by (eff − 1) × the normal task
   time, where eff is the worst effective slowdown across the stage's
   partitions. With speculation a copy launches once the normal task time
   has elapsed and runs at normal speed, capping the effective slowdown at
   2× — the first finisher wins whenever the original is slower than
   that. *)
let inject_stragglers t base nparts =
  if chaos_active t && nparts > 0 then begin
    t.chaos.cpu_stage_seq <- t.chaos.cpu_stage_seq + 1;
    let stage = t.chaos.cpu_stage_seq in
    let rc = recovery t in
    let worst = ref 1.0 in
    for part = 0 to nparts - 1 do
      match Faults.straggler t.faults ~stage ~part with
      | None -> ()
      | Some slow ->
          let eff =
            if rc.Cluster.speculate then begin
              t.metrics.Metrics.speculative_launches <-
                t.metrics.Metrics.speculative_launches + 1;
              if slow > 2.0 then
                t.metrics.Metrics.speculative_wins <-
                  t.metrics.Metrics.speculative_wins + 1;
              Float.min slow 2.0
            end
            else slow
          in
          if eff > !worst then worst := eff;
          recovery_instant t "straggler"
            [ ("stage", Trace.A_int stage);
              ("partition", Trace.A_int part);
              ("slowdown", Trace.A_float slow);
              ("effective", Trace.A_float eff) ]
    done;
    if !worst > 1.0 then charge t ((!worst -. 1.0) *. base)
  end

(* Shuffle-fetch failures: a reducer loses one mapper's output chunk and
   re-fetches it after a backoff. One chunk is roughly
   bytes / (mappers × reducers) of the shuffled volume. *)
let inject_fetch_faults t ~bytes ~nparts =
  if chaos_active t && nparts > 0 then begin
    t.chaos.shuffle_seq <- t.chaos.shuffle_seq + 1;
    let shuffle = t.chaos.shuffle_seq in
    let rc = recovery t in
    let chunk = bytes /. float_of_int (nparts * nparts) in
    for part = 0 to nparts - 1 do
      let k = Faults.fetch_failures t.faults ~shuffle ~part in
      if k > 0 then begin
        t.metrics.Metrics.fetch_failures <- t.metrics.Metrics.fetch_failures + k;
        charge t
          (float_of_int k
          *. (rc.Cluster.retry_backoff_s +. (chunk /. t.cluster.Cluster.net_bw)));
        recovery_instant t "fetch_retry"
          [ ("shuffle", Trace.A_int shuffle);
            ("reducer", Trace.A_int part);
            ("times", Trace.A_int k) ]
      end
    done
  end

(* CPU time for narrow work: partitions run in parallel, one slot each.
   The charge is the average partition cost, floored by the cost of the
   single largest record: physical sampling noise in partition placement
   must not look like skew, but a genuinely huge record (e.g. a hot group
   materialized by groupBy under a Pareto key) pins one slot for its full
   processing time. *)
let charge_local_cpu t (pd : Pdata.t) =
  let cost_of ~recs ~bytes =
    (recs *. t.cluster.Cluster.per_record_cpu) +. (bytes /. t.cluster.Cluster.cpu_bw)
  in
  let avg =
    cost_of ~recs:(Pdata.logical_records pd) ~bytes:(Pdata.logical_bytes pd)
    /. float_of_int (Pdata.nparts pd)
  in
  let largest_record =
    Array.fold_left
      (fun acc part ->
        List.fold_left (fun acc v -> max acc (float_of_int (Value.byte_size v))) acc part)
      0.0 pd.Pdata.parts
  in
  let base =
    Float.max avg (cost_of ~recs:pd.Pdata.rmult ~bytes:(largest_record *. pd.Pdata.bmult))
  in
  charge t base;
  inject_stragglers t base (Pdata.nparts pd)

(* Data-motion counter samples: emitted AFTER the metric is updated so the
   Chrome counter track plots the running total. Pure observation — the
   tracer never feeds back into charging. *)
let motion_counter t name total =
  if Trace.enabled t.tracer then Trace.counter t.tracer ~cat:"motion" name total

(* All charge_* helpers below take LOGICAL byte quantities: callers apply
   the provenance multipliers carried by the data (Pdata.logical_bytes). *)
let charge_shuffle t bytes =
  t.metrics.Metrics.shuffle_bytes <- t.metrics.Metrics.shuffle_bytes +. bytes;
  motion_counter t "shuffle_bytes" t.metrics.Metrics.shuffle_bytes;
  charge t (bytes /. (float_of_int t.cluster.Cluster.nodes *. t.cluster.Cluster.net_bw))

let charge_broadcast t logical =
  let total = logical *. float_of_int t.cluster.Cluster.nodes in
  t.metrics.Metrics.broadcast_bytes <- t.metrics.Metrics.broadcast_bytes +. total;
  motion_counter t "broadcast_bytes" t.metrics.Metrics.broadcast_bytes;
  charge t (logical *. t.profile.Cluster.broadcast_factor /. t.cluster.Cluster.net_bw *. 2.0)

let charge_dfs_read t bytes =
  t.metrics.Metrics.dfs_read_bytes <- t.metrics.Metrics.dfs_read_bytes +. bytes;
  motion_counter t "dfs_read_bytes" t.metrics.Metrics.dfs_read_bytes;
  charge t (bytes /. (float_of_int t.cluster.Cluster.nodes *. t.cluster.Cluster.disk_bw))

let charge_dfs_write t bytes =
  t.metrics.Metrics.dfs_write_bytes <- t.metrics.Metrics.dfs_write_bytes +. bytes;
  motion_counter t "dfs_write_bytes" t.metrics.Metrics.dfs_write_bytes;
  charge t (bytes /. (float_of_int t.cluster.Cluster.nodes *. t.cluster.Cluster.disk_bw))

let charge_collect t bytes =
  t.metrics.Metrics.collect_bytes <- t.metrics.Metrics.collect_bytes +. bytes;
  motion_counter t "collect_bytes" t.metrics.Metrics.collect_bytes;
  charge t (bytes /. t.cluster.Cluster.net_bw)

let charge_parallelize t bytes =
  t.metrics.Metrics.parallelize_bytes <- t.metrics.Metrics.parallelize_bytes +. bytes;
  motion_counter t "parallelize_bytes" t.metrics.Metrics.parallelize_bytes;
  charge t (bytes /. t.cluster.Cluster.net_bw)

let charge_spill t bytes =
  t.metrics.Metrics.spilled_bytes <- t.metrics.Metrics.spilled_bytes +. bytes;
  motion_counter t "spilled_bytes" t.metrics.Metrics.spilled_bytes;
  charge t (2.0 *. bytes /. t.cluster.Cluster.disk_bw)

(* ------------------------------------------------------------------ *)
(* Memory governance (Memman)                                           *)
(* ------------------------------------------------------------------ *)

let memory_instant t name args =
  if Trace.enabled t.tracer then Trace.instant t.tracer ~cat:"memory" ~args name

(* Operator-state overflow written to node-local disk and merged back: two
   disk passes, like the external hash aggregation / grace join it stands
   for. Counted ONLY in the dedicated memory channels so the plain I/O
   metrics (and the profile's own [spilled_bytes]) stay untouched by
   governance — the same separation the checkpoint channel uses. *)
let charge_mem_spill t ~slots ~bytes =
  t.metrics.Metrics.mem_spills <- t.metrics.Metrics.mem_spills + slots;
  t.metrics.Metrics.mem_spill_bytes <- t.metrics.Metrics.mem_spill_bytes +. bytes;
  if Trace.enabled t.tracer then
    Trace.counter t.tracer ~cat:"memory" "mem_spill_bytes"
      t.metrics.Metrics.mem_spill_bytes;
  charge t
    (2.0 *. bytes /. (float_of_int t.cluster.Cluster.nodes *. t.cluster.Cluster.disk_bw))

(* OOM kill-and-retry (spilling disabled): the container supervisor kills
   the attempt whose state exceeds its budget; the scheduler retries it at
   halved parallelism, so the surviving slots inherit the dead slots'
   memory share. Each kill wastes the state-build work ([need] bytes of
   CPU) plus a doubling backoff; the successful attempt then runs the
   state-building slots at reduced parallelism, multiplying that work by
   the lost slot factor. Deterministic: a pure function of [attempts] and
   [need]. *)
let oom_kill_retry t ~op ~attempts ~need =
  let rc = recovery t in
  let base = need /. t.cluster.Cluster.cpu_bw in
  for a = 1 to attempts do
    t.metrics.Metrics.oom_kills <- t.metrics.Metrics.oom_kills + 1;
    charge t ((rc.Cluster.retry_backoff_s *. (2.0 ** float_of_int (a - 1))) +. base)
  done;
  charge t (base *. ((2.0 ** float_of_int attempts) -. 1.0));
  memory_instant t "oom_kill"
    [ ("op", Trace.A_str op);
      ("attempts", Trace.A_int attempts);
      ("state_bytes", Trace.A_float need) ]

(* Present one state-building operator's per-slot sizes to the accountant
   and charge whatever degradation it decides. Runs on the coordinator
   AFTER the state exists (the simulator materializes first, accounts
   second), so reservations are numbered in execution order — identically
   at any domain count — and double as the injection points of the chaos
   [Oom_kill] channel. *)
let reserve_memory t ~op ~needs =
  let maxn = Array.fold_left Float.max 0.0 needs in
  if maxn > 0.0 then begin
    if maxn > t.metrics.Metrics.mem_peak_bytes then begin
      t.metrics.Metrics.mem_peak_bytes <- maxn;
      if Trace.enabled t.tracer then
        Trace.counter t.tracer ~cat:"memory" "mem_peak_bytes" maxn
    end;
    if chaos_active t then begin
      t.chaos.reserve_seq <- t.chaos.reserve_seq + 1;
      if Faults.oom_kill t.faults ~reservation:t.chaos.reserve_seq then
        oom_kill_retry t ~op ~attempts:1 ~need:maxn
    end;
    match Memman.reserve t.memman ~needs with
    | Memman.Fits -> ()
    | Memman.Spill { slots; bytes } ->
        memory_instant t "mem_spill"
          [ ("op", Trace.A_str op);
            ("slots", Trace.A_int slots);
            ("bytes", Trace.A_float bytes) ];
        charge_mem_spill t ~slots ~bytes
    | Memman.Kill { attempts } -> oom_kill_retry t ~op ~attempts ~need:maxn
    | Memman.Fatal ->
        raise
          (Engine_failure
             (Printf.sprintf
                "out of memory: %s state of %.0f MB per slot exceeds the %.0f MB \
                 budget even at one slot per node (enable spilling or raise the \
                 budget)"
                op (maxn /. 1e6)
                (Memman.budget t.memman /. 1e6)))
  end

(* Per-slot state sizes of a partitioned intermediate: each partition's
   physical bytes × the provenance byte multiplier (logical bytes, the
   budget's unit). *)
let part_needs (pd : Pdata.t) =
  Array.map (fun part -> list_bytes part *. pd.Pdata.bmult) pd.Pdata.parts

(* Admit a freshly materialized Mem-cached bag to the LRU registry,
   evicting least-recently-used cached bags to stay under the cache
   capacity [budget × dop]. An evicted bag's handle drops its
   materialization, so the next access recomputes it through lineage —
   the same recovery path an executor loss takes (dropping memory is
   free; the recompute is where the cost lands). A bag larger than the
   whole capacity is not cached at all. No-op when ungoverned. *)
let register_cached t (h : handle) (pd : Pdata.t) =
  if Memman.governed t.memman then begin
    let bytes = Pdata.logical_bytes pd in
    let adm =
      Memman.register t.memman ~bytes
        ~evict:(fun () ->
          h.h_mat <- None;
          h.h_memid <- None)
    in
    List.iter
      (fun b ->
        t.metrics.Metrics.cache_evictions <- t.metrics.Metrics.cache_evictions + 1;
        t.metrics.Metrics.evicted_bytes <- t.metrics.Metrics.evicted_bytes +. b;
        memory_instant t "cache_evict" [ ("bytes", Trace.A_float b) ])
      adm.Memman.evicted;
    match adm.Memman.admitted with
    | Some id -> h.h_memid <- Some id
    | None ->
        h.h_mat <- None;
        h.h_memid <- None;
        memory_instant t "cache_admission_denied" [ ("bytes", Trace.A_float bytes) ]
  end

let in_job t f =
  if t.job_depth > 0 then f ()
  else begin
    t.metrics.Metrics.jobs <- t.metrics.Metrics.jobs + 1;
    (* Admission control: a submission occupies an admission slot until
       one teardown window ([job_overhead_s]) after its completion; past
       [max_inflight] held slots the driver queues the submission and
       waits for the earliest release. Off by default. *)
    let delay = Memman.admit_job t.memman ~now:t.metrics.Metrics.sim_time_s in
    if delay > 0.0 then begin
      t.metrics.Metrics.jobs_queued <- t.metrics.Metrics.jobs_queued + 1;
      t.metrics.Metrics.queue_wait_s <- t.metrics.Metrics.queue_wait_s +. delay;
      memory_instant t "job_queued" [ ("wait_s", Trace.A_float delay) ];
      charge t delay
    end;
    let discount = if t.iteration_rerun then 0.1 else 1.0 in
    charge t (t.profile.Cluster.job_overhead_s *. discount);
    t.job_depth <- t.job_depth + 1;
    Fun.protect
      ~finally:(fun () ->
        t.job_depth <- t.job_depth - 1;
        Memman.job_done t.memman
          ~release:(t.metrics.Metrics.sim_time_s +. t.profile.Cluster.job_overhead_s))
      (fun () ->
        if Trace.enabled t.tracer then
          Trace.span t.tracer ~cat:"job" "job"
            ~args:[ ("job", Trace.A_int t.metrics.Metrics.jobs) ]
            f
        else f ())
  end

let lookup_env env x =
  match List.assoc_opt x env with
  | Some v -> v
  | None -> raise (Engine_failure (Printf.sprintf "unbound driver variable %s" x))

(* ------------------------------------------------------------------ *)
(* Parallel partition execution                                         *)
(* ------------------------------------------------------------------ *)

(* UDF invocation tally. Partition tasks run on worker domains, so they
   must never write [t.metrics] directly (a racy increment would both lose
   counts and make them domain-count dependent). Instead each task counts
   into a domain-local cell that the coordinator merges at the barrier;
   outside any parallel region the cell is absent and counts go straight to
   the metrics. Nested barriers merge into the enclosing task's cell. *)
let tally_key : int ref option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let add_udf_count t n =
  if n > 0 then
    match Domain.DLS.get tally_key with
    | Some c -> c := !c + n
    | None -> t.metrics.Metrics.udf_invocations <- t.metrics.Metrics.udf_invocations + n

let bump_udf t = add_udf_count t 1

(* Fold the pool's steal counters into the metrics after a barrier, as the
   delta since the last accounted barrier. Purely observational — like
   [wall_time_s], the par_* counters are scheduling-dependent and excluded
   from the bit-identical cost-model invariant. *)
let account_steals t =
  let s = Pool.stats t.pool in
  let steals = s.Pool.steals - t.steal_seen.Pool.steals in
  let misses = s.Pool.steal_misses - t.steal_seen.Pool.steal_misses in
  if steals <> 0 || misses <> 0 then begin
    t.metrics.Metrics.par_steals <- t.metrics.Metrics.par_steals + max 0 steals;
    t.metrics.Metrics.par_steal_misses <-
      t.metrics.Metrics.par_steal_misses + max 0 misses;
    t.steal_seen <- s;
    if steals > 0 && Trace.enabled t.tracer then
      Trace.instant t.tracer ~cat:"sched" "steal"
        ~args:[ ("steals", Trace.A_int steals); ("misses", Trace.A_int misses) ]
  end

(* Run [f 0 .. f (n-1)] — one task per partition — on the domain pool with
   a barrier. Cost charging stays on the coordinator: tasks must not touch
   the metrics or the simulated clock, which is exactly why [sim_time_s]
   and every other cost field are bit-identical whatever the domain count.
   Exceptions surface deterministically (lowest partition index first). *)
let par_run t n (f : int -> 'a) : 'a array =
  (* Chaos first, before the single-domain shortcut below: injected
     barrier faults must be drawn for every barrier whatever the pool
     size, or fault plans would stop being domain-count invariant. *)
  check_interrupts t;
  inject_barrier_faults t n;
  (* Partition-task spans run on the emitting worker domain: the span's
     tid IS the domain id, and the args repeat it next to the partition
     index. The wrapper only observes — never counts or charges. *)
  let f =
    if not (Trace.enabled t.tracer) then f
    else
      fun i ->
        Trace.span t.tracer ~cat:"task" "task"
          ~args:
            [ ("partition", Trace.A_int i);
              ("domain", Trace.A_int (Domain.self () :> int)) ]
          (fun () -> f i)
  in
  if n <= 1 || Pool.size t.pool <= 1 then Pool.parmap t.pool f (Array.init n Fun.id)
  else begin
    t.metrics.Metrics.par_stages <- t.metrics.Metrics.par_stages + 1;
    t.metrics.Metrics.par_tasks <- t.metrics.Metrics.par_tasks + n;
    let task i =
      let saved = Domain.DLS.get tally_key in
      let c = ref 0 in
      Domain.DLS.set tally_key (Some c);
      Fun.protect
        ~finally:(fun () -> Domain.DLS.set tally_key saved)
        (fun () ->
          let r = f i in
          (r, !c))
    in
    let run_barrier () = Pool.parmap t.pool task (Array.init n Fun.id) in
    let rs =
      if Trace.enabled t.tracer then
        Trace.span t.tracer ~cat:"stage" "barrier"
          ~args:[ ("tasks", Trace.A_int n) ]
          run_barrier
      else run_barrier ()
    in
    account_steals t;
    Array.map
      (fun (r, c) ->
        add_udf_count t c;
        r)
      rs
  end

(* Narrow (partition-local) transform on the pool, mirroring
   [Pdata.map_parts_preserving] — for partition-local work that is NOT a
   list homomorphism (e.g. within-partition dedup) and must stay one task
   per partition. *)
let par_map_parts_preserving t f (pd : Pdata.t) : Pdata.t =
  { pd with Pdata.parts = par_run t (Pdata.nparts pd) (fun i -> f pd.Pdata.parts.(i)) }

(* ------------------------------------------------------------------ *)
(* Adaptive chunking                                                    *)
(* ------------------------------------------------------------------ *)

(* The work-stealing pool balances load at task granularity, so a skewed
   partition dispatched as ONE task still pins one domain for its whole
   duration. For operators that are order-preserving list homomorphisms
   (f (a @ b) = f a @ f b: map, flatMap, filter, cross/broadcast-join
   probes, shuffle routing) the barrier below splits each partition into
   chunks of [chunk_rows] physical rows and reassembles the chunk outputs
   in order — bit-identical results for every chunk size, but a straggler
   partition's tail can now be stolen mid-partition. Non-homomorphic
   per-partition work (fold accumulators, groupBy/aggBy hash tables,
   sort-based distinct/minus, repartition-join builds) stays one task per
   partition: splitting a float fold, for instance, would reassociate
   additions and break the bit-identical invariant across chunk sizes. *)

(* With more chunks than domains, late-arriving steals keep everyone busy
   until the tail; 4x oversubscription is plenty before per-task overhead
   shows. *)
let chunk_oversub = 4

(* Granularity floor: a chunk must carry at least this fraction of one
   simulated task launch ([sched_linear_s]) in per-row work. The full
   launch cost models a distributed scheduler (milliseconds); chunks are
   dispatched on the host pool where a deque push is microseconds, so a
   small fraction of it is the right floor — big enough that trivial rows
   get coarse chunks, small enough that a skewed partition still splits. *)
let chunk_floor_frac = 0.01

(* Physical rows per chunk for a barrier over [pd]. [Chunk_auto] aims for
   [chunk_oversub] chunks per domain, floored at [chunk_floor_frac] of a
   task's scheduling cost worth of simulated work per chunk — the
   cost-model estimate (per-record CPU + bytes through the UDF throughput)
   prices a row, and rows cheaper to process get coarser chunks. *)
let chunk_rows t (pd : Pdata.t) =
  match t.chunk with
  | Chunk_fixed k -> max 1 k
  | Chunk_auto ->
      let rows = Pdata.records pd in
      if rows = 0 then max_int
      else begin
        let per_row_s =
          ((Pdata.logical_records pd *. t.cluster.Cluster.per_record_cpu)
          +. (Pdata.logical_bytes pd /. t.cluster.Cluster.cpu_bw))
          /. float_of_int rows
        in
        let floor_rows =
          if per_row_s <= 0.0 then rows
          else
            int_of_float
              (Float.min (float_of_int rows)
                 (ceil (t.profile.Cluster.sched_linear_s *. chunk_floor_frac /. per_row_s)))
        in
        let target =
          (rows + (Pool.size t.pool * chunk_oversub) - 1)
          / (Pool.size t.pool * chunk_oversub)
        in
        max 1 (max floor_rows target)
      end

(* Split every partition into <= k-row chunks, keeping element order;
   returns (partition index, rows) tasks in partition-major order, so the
   lowest failing task is the first failing chunk of sequential order and
   exception choice stays deterministic. Empty partitions still get one
   task, matching the unchunked barrier's task layout. *)
let split_chunks k (parts : Value.t list array) =
  let tasks = ref [] in
  Array.iteri
    (fun p rows ->
      let rec go rows =
        let rec take n xs acc =
          match xs with
          | x :: rest when n > 0 -> take (n - 1) rest (x :: acc)
          | _ -> (List.rev acc, xs)
        in
        let chunk, rest = take k rows [] in
        tasks := (p, chunk) :: !tasks;
        if rest <> [] then go rest
      in
      go rows)
    parts;
  Array.of_list (List.rev !tasks)

(* Chunked barrier for order-preserving list homomorphisms: [f] runs over
   every chunk on the pool and the per-partition outputs are the in-order
   concatenations of their chunks' outputs. Shares all of [par_run]'s
   bookkeeping discipline: chaos draws and fault charges are keyed on the
   LOGICAL partition count (never the chunk count, which varies with the
   chunk policy), UDF counts tally through the domain-local cell, and
   cost charging stays on the coordinator. *)
let par_chunked t (f : Value.t list -> 'b list) (pd : Pdata.t) : 'b list array =
  let nparts = Pdata.nparts pd in
  check_interrupts t;
  inject_barrier_faults t nparts;
  let parts = pd.Pdata.parts in
  let f_traced =
    if not (Trace.enabled t.tracer) then fun (_, rows) -> f rows
    else
      fun (p, rows) ->
        Trace.span t.tracer ~cat:"task" "task"
          ~args:
            [ ("partition", Trace.A_int p);
              ("domain", Trace.A_int (Domain.self () :> int)) ]
          (fun () -> f rows)
  in
  if nparts <= 1 && Pdata.records pd <= 1 || Pool.size t.pool <= 1 then
    Pool.parmap t.pool (fun i -> f_traced (i, parts.(i))) (Array.init nparts Fun.id)
  else begin
    let tasks = split_chunks (chunk_rows t pd) parts in
    let n = Array.length tasks in
    t.metrics.Metrics.par_stages <- t.metrics.Metrics.par_stages + 1;
    t.metrics.Metrics.par_tasks <- t.metrics.Metrics.par_tasks + n;
    t.metrics.Metrics.par_chunks <- t.metrics.Metrics.par_chunks + (n - nparts);
    let task tk =
      let saved = Domain.DLS.get tally_key in
      let c = ref 0 in
      Domain.DLS.set tally_key (Some c);
      Fun.protect
        ~finally:(fun () -> Domain.DLS.set tally_key saved)
        (fun () ->
          let r = f_traced tk in
          (r, !c))
    in
    let run_barrier () = Pool.parmap t.pool task tasks in
    let rs =
      if Trace.enabled t.tracer then
        Trace.span t.tracer ~cat:"stage" "barrier"
          ~args:[ ("tasks", Trace.A_int n) ]
          run_barrier
      else run_barrier ()
    in
    account_steals t;
    let chunks_of = Array.make nparts [] in
    for j = n - 1 downto 0 do
      let p, _ = tasks.(j) in
      let r, c = rs.(j) in
      add_udf_count t c;
      chunks_of.(p) <- r :: chunks_of.(p)
    done;
    Array.map List.concat chunks_of
  end

let par_map_parts_chunked t f (pd : Pdata.t) : Pdata.t =
  { pd with Pdata.parts = par_chunked t f pd; Pdata.part_key = None }

let par_map_parts_preserving_chunked t f (pd : Pdata.t) : Pdata.t =
  { pd with Pdata.parts = par_chunked t f pd }

(* ------------------------------------------------------------------ *)
(* Plan execution                                                       *)
(* ------------------------------------------------------------------ *)

(* Operator-kind names for stage spans; matches the vocabulary that
   [note_op] / [Plan] pretty-printing already use. *)
let plan_op_name : Plan.t -> string = function
  | Plan.Read _ -> "read"
  | Plan.Scan _ -> "scan"
  | Plan.Local _ -> "local"
  | Plan.Map _ -> "map"
  | Plan.Flat_map _ -> "flatMap"
  | Plan.Filter _ -> "filter"
  | Plan.Eq_join _ -> "join"
  | Plan.Semi_join _ -> "semijoin"
  | Plan.Anti_join _ -> "antijoin"
  | Plan.Cross _ -> "cross"
  | Plan.Group_by _ -> "groupBy"
  | Plan.Agg_by _ -> "aggBy"
  | Plan.Fold _ -> "fold"
  | Plan.Union _ -> "union"
  | Plan.Minus _ -> "minus"
  | Plan.Distinct _ -> "distinct"
  | Plan.Cache _ -> "cache"
  | Plan.Partition_by _ -> "partitionBy"
  | Plan.Stateful_create _ -> "statefulCreate"
  | Plan.Stateful_read _ -> "statefulRead"
  | Plan.Stateful_update _ -> "statefulUpdate"
  | Plan.Stateful_update_msgs _ -> "statefulUpdateMsgs"

let rec collect_bag t (h : handle) : Value.t list * float * float =
  (* returns (rows, logical bytes, logical records) *)
  match h.h_collected with
  | Some c -> c
  | None ->
      let pd = materialize t h in
      let vs = Pdata.to_list pd in
      let lbytes = Pdata.logical_bytes pd and lrecs = Pdata.logical_records pd in
      charge_collect t lbytes;
      h.h_collected <- Some (vs, lbytes, lrecs);
      vs, lbytes, lrecs

and force_bag t (h : handle) : Value.t list =
  let vs, _, _ = collect_bag t h in
  vs

and materialize t (h : handle) : Pdata.t =
  match h.h_mat with
  | Some (pd, loc) ->
      t.cache_hit_counter <- t.cache_hit_counter + 1;
      let lost =
        (* scripted loss at this hit, or — for memory-resident copies — an
           executor that died since materialization took its partitions
           with it (DFS-backed copies survive node loss) *)
        Faults.cache_loss t.faults ~hit:t.cache_hit_counter
        || (h.h_cache = Some Mem && loc = Mem && h.h_epoch < t.chaos.loss_epoch)
      in
      (* [h_cache = Some Mem] guard: eagerly-pinned results (stateful
         updates, snapshotted state reads) also live under [Mem] but must
         run exactly once — losing them to an epoch bump would re-run
         their side effects and change results. Only true caches, which
         are recomputable by construction, are subject to executor loss. *)
      if lost then begin
        (* injected executor failure: the cached copy is gone; recover it
           transparently through the lineage (the R in RDD). The registry
           entry is forgotten (not evicted — the partitions died with the
           node), so a concurrent eviction pass can never touch this
           handle again: the recompute below runs exactly once. *)
        t.metrics.Metrics.cache_losses <- t.metrics.Metrics.cache_losses + 1;
        (match h.h_memid with
        | Some id ->
            Memman.forget t.memman id;
            h.h_memid <- None
        | None -> ());
        h.h_mat <- None;
        let rebuild () =
          let pd' = materialize t h in
          t.metrics.Metrics.recomputed_partitions <-
            t.metrics.Metrics.recomputed_partitions + Pdata.nparts pd';
          pd'
        in
        if Trace.enabled t.tracer then
          Trace.span t.tracer ~cat:"recovery" "recompute_lost_cache"
            ~args:[ ("hit", Trace.A_int t.cache_hit_counter) ]
            rebuild
        else rebuild ()
      end
      else begin
        t.metrics.Metrics.cache_hits <- t.metrics.Metrics.cache_hits + 1;
        (match h.h_memid with
        | Some id -> Memman.touch t.memman id
        | None -> ());
        if loc = Dfs then charge_dfs_read t (Pdata.logical_bytes pd);
        pd
      end
  | None -> begin
      t.metrics.Metrics.recomputes <- t.metrics.Metrics.recomputes + 1;
      match in_job t (fun () -> exec_plan t h.h_env h.h_plan) with
      | Obag pd ->
          (match h.h_cache with
          | Some Dfs ->
              charge_dfs_write t (Pdata.logical_bytes pd);
              h.h_epoch <- t.chaos.loss_epoch;
              h.h_mat <- Some (pd, Dfs)
          | Some Mem ->
              h.h_epoch <- t.chaos.loss_epoch;
              h.h_mat <- Some (pd, Mem);
              register_cached t h pd
          | None -> ());
          pd
      | Oscalar _ | Ostateful _ -> raise (Engine_failure "expected a bag-valued dataflow")
    end

(* Resolve a driver binding to an interpreter value, charging the DRV→UDF
   broadcast motion. *)
and resolve_for_udf t env x : Eval.rvalue =
  match lookup_env env x with
  | Dscalar rv -> begin
      (match rv with
      | Eval.V v -> charge_broadcast t (float_of_int (Value.byte_size v))
      | Eval.Clo _ | Eval.St _ -> ());
      rv
    end
  | Dbag h ->
      let vs, lbytes, _ = collect_bag t h in
      charge_broadcast t lbytes;
      Eval.V (Value.bag vs)
  | Dstateful _ -> raise (Engine_failure "cannot broadcast a stateful bag")

(* Evaluation environment for worker-side code: every driver variable the
   body captures is shipped (the compiler's broadcast annotation names
   them; free-variable analysis is the safety net). *)
and worker_env t env ~params body_exprs =
  (* Returns the evaluation environment for worker-side code together with
     the total (physical) record count of the collections it captures —
     tables read inside the body and bag-valued broadcast variables — which
     prices per-element linear scans (an un-unnested exists). A [Read]
     inside worker-side code also means the whole table is shipped to every
     worker, charged as a broadcast (the §4.2.1 baseline). *)
  let inner_records = ref 0.0 in
  let seen_tables = ref [] in
  List.iter
    (fun e ->
      Expr.iter_exprs
        (function
          | Expr.Read (Expr.Src_table name) when not (List.mem name !seen_tables) ->
              seen_tables := name :: !seen_tables;
              let rows = try Eval.read_table t.eval_ctx name with Eval.Eval_error _ -> [] in
              let sc = Cluster.table_scale t.cluster name in
              inner_records := !inner_records +. (float_of_int (List.length rows) *. sc);
              charge_broadcast t (list_bytes rows *. sc)
          | _ -> ())
        e)
    body_exprs;
  let fv =
    List.fold_left (fun acc e -> Strset.union acc (Expr.free_vars e)) Strset.empty body_exprs
  in
  let fv = List.fold_left (fun s p -> Strset.remove p s) fv params in
  let eval_env =
    Strset.fold
      (fun x acc ->
        match List.assoc_opt x env with
        | None -> acc (* unbound: let Eval report it if the UDF really uses it *)
        | Some binding ->
            let rv = resolve_for_udf t env x in
            (match (rv, binding) with
            | Eval.V (Value.Bag _), Dbag h ->
                let _, _, lrecs = collect_bag t h in
                inner_records := !inner_records +. lrecs
            | Eval.V (Value.Bag vs), _ ->
                inner_records := !inner_records +. float_of_int (List.length vs)
            | _ -> ());
            Eval.bind x rv acc)
      fv Eval.empty_env
  in
  (eval_env, !inner_records)

(* Per-input-element cost of a UDF that scans its captured collections. *)
and udf_scan_cost t ~inner_records (pd : Pdata.t) =
  if inner_records > 0.0 then begin
    let pairs = Pdata.logical_records pd *. inner_records in
    charge t (pairs *. t.cluster.Cluster.pair_scan_cost /. float_of_int (dop t))
  end

and udf_fn_ex t env (u : Plan.udf) : (Value.t -> Value.t) * float =
  (* [worker_env] does all the cost charging (broadcasts, inner table
     reads), so the mode switch below can only move wall-clock. *)
  let base, inner = worker_env t env ~params:[ u.Plan.param ] [ u.Plan.body ] in
  let f =
    match t.udf_mode with
    | Interp ->
        fun v ->
          Eval.eval_value t.eval_ctx (Eval.bind u.Plan.param (Eval.V v) base) u.Plan.body
    | Compiled -> Compile.fn t.eval_ctx base ~param:u.Plan.param u.Plan.body
  in
  ( (fun v ->
      bump_udf t;
      f v),
    inner )

and udf_fn t env u = fst (udf_fn_ex t env u)

and udf2_fn t env (u : Plan.udf2) : Value.t -> Value.t -> Value.t =
  let base, _ =
    worker_env t env ~params:[ u.Plan.param1; u.Plan.param2 ] [ u.Plan.body2 ]
  in
  let f =
    match t.udf_mode with
    | Interp ->
        fun a b ->
          let e = Eval.bind u.Plan.param1 (Eval.V a) base in
          let e = Eval.bind u.Plan.param2 (Eval.V b) e in
          Eval.eval_value t.eval_ctx e u.Plan.body2
    | Compiled ->
        Compile.fn2 t.eval_ctx base ~param1:u.Plan.param1 ~param2:u.Plan.param2
          u.Plan.body2
  in
  fun a b ->
    bump_udf t;
    f a b

(* Runtime form of a fold algebra: (empty, single, union). *)
and fold_runtime t env (fns : Expr.fold_fns) =
  let base, _ =
    worker_env t env ~params:[] [ fns.Expr.f_empty; fns.Expr.f_single; fns.Expr.f_union ]
  in
  match t.udf_mode with
  | Interp ->
      let empty = Eval.eval_value t.eval_ctx base fns.Expr.f_empty in
      let single_rv = Eval.eval t.eval_ctx base fns.Expr.f_single in
      let union_rv = Eval.eval t.eval_ctx base fns.Expr.f_union in
      let single v = Eval.apply_rv t.eval_ctx single_rv v in
      let union a b = Eval.apply2_rv t.eval_ctx union_rv a b in
      (empty, single, union)
  | Compiled -> Compile.fold_fns t.eval_ctx base fns

and exec_to_bag t env p =
  match exec_plan t env p with
  | Obag pd -> pd
  | Oscalar _ | Ostateful _ -> raise (Engine_failure "expected a bag-valued operator input")

and exec_plan t env (p : Plan.t) : out =
  if not (Trace.enabled t.tracer) then exec_plan_inner t env p
  else
    Trace.span_f t.tracer ~cat:"stage" (plan_op_name p)
      ~end_args:(function
        | Obag pd ->
            [ ("out_records", Trace.A_float (Pdata.logical_records pd));
              ("out_bytes", Trace.A_float (Pdata.logical_bytes pd)) ]
        | Oscalar _ -> [ ("out", Trace.A_str "scalar") ]
        | Ostateful _ -> [ ("out", Trace.A_str "stateful") ])
      (fun () -> exec_plan_inner t env p)

and exec_plan_inner t env (p : Plan.t) : out =
  match p with
  | Plan.Read name ->
      let rows =
        try Eval.read_table t.eval_ctx name
        with Eval.Eval_error m -> raise (Engine_failure m)
      in
      let sc = Cluster.table_scale t.cluster name in
      let pd = Pdata.of_list ~pool:t.pool ~rmult:sc ~bmult:sc ~nparts:(dop t) rows in
      charge_stage t;
      charge_dfs_read t (Pdata.logical_bytes pd);
      Obag pd
  | Plan.Scan x -> begin
      match lookup_env env x with
      | Dbag h -> Obag (materialize t h)
      | Dscalar (Eval.V (Value.Bag vs)) ->
          (* DRV → DFL: parallelize a driver-local bag. *)
          charge_parallelize t (list_bytes vs);
          Obag (Pdata.of_list ~pool:t.pool ~nparts:(dop t) vs)
      | Dscalar _ -> raise (Engine_failure (Printf.sprintf "scan %s: not a bag" x))
      | Dstateful _ ->
          raise (Engine_failure (Printf.sprintf "scan %s: use statefulRead" x))
    end
  | Plan.Local e ->
      let vs = Value.to_bag (eval_driver_expr t env e) in
      charge_parallelize t (list_bytes vs);
      Obag (Pdata.of_list ~pool:t.pool ~nparts:(dop t) vs)
  | Plan.Map (u, q) ->
      let pd = exec_to_bag t env q in
      note_op t "map" pd;
      charge_stage t;
      charge_local_cpu t pd;
      let f, inner_records = udf_fn_ex t env u in
      udf_scan_cost t ~inner_records pd;
      Obag (par_map_parts_chunked t (List.map f) pd)
  | Plan.Flat_map (u, q) ->
      let pd = exec_to_bag t env q in
      note_op t "flatMap" pd;
      charge_stage t;
      charge_local_cpu t pd;
      let f, inner_records = udf_fn_ex t env u in
      udf_scan_cost t ~inner_records pd;
      Obag (par_map_parts_chunked t (List.concat_map (fun v -> Value.to_bag (f v))) pd)
  | Plan.Filter (u, q) ->
      let pd = exec_to_bag t env q in
      note_op t "filter" pd;
      charge_stage t;
      charge_local_cpu t pd;
      let f, inner_records = udf_fn_ex t env u in
      udf_scan_cost t ~inner_records pd;
      Obag (par_map_parts_preserving_chunked t (List.filter (fun v -> Value.to_bool (f v))) pd)
  | Plan.Eq_join { lkey; rkey; left; right } ->
      let lpd = exec_to_bag t env left in
      let rpd = exec_to_bag t env right in
      note_op t "join" (Pdata.union lpd rpd);
      exec_join t env ~semi:false ~lkey ~rkey lpd rpd
  | Plan.Semi_join { lkey; rkey; left; right } ->
      let lpd = exec_to_bag t env left in
      let rpd = exec_to_bag t env right in
      note_op t "semijoin" (Pdata.union lpd rpd);
      exec_join t env ~semi:true ~lkey ~rkey lpd rpd
  | Plan.Anti_join { lkey; rkey; left; right } ->
      let lpd = exec_to_bag t env left in
      let rpd = exec_to_bag t env right in
      note_op t "antijoin" (Pdata.union lpd rpd);
      exec_anti_join t env ~lkey ~rkey lpd rpd
  | Plan.Cross (a, b) ->
      let apd = exec_to_bag t env a in
      let bpd = exec_to_bag t env b in
      charge_stage t;
      (* the smaller side is broadcast; every pair is produced locally *)
      let abytes = Pdata.logical_bytes apd and bbytes = Pdata.logical_bytes bpd in
      let small, big, flip =
        if abytes <= bbytes then (apd, bpd, false) else (bpd, apd, true)
      in
      charge_broadcast t (Pdata.logical_bytes small);
      (* every slot holds the whole broadcast side *)
      reserve_memory t ~op:"cross" ~needs:[| Pdata.logical_bytes small |];
      let small_list = Pdata.to_list small in
      let pairs v w = if flip then Value.tuple [ w; v ] else Value.tuple [ v; w ] in
      let result =
        par_map_parts_chunked t
          (fun part -> List.concat_map (fun v -> List.map (fun w -> pairs v w) small_list) part)
          big
      in
      let result =
        Pdata.with_mult
          ~rmult:(Float.max apd.Pdata.rmult bpd.Pdata.rmult)
          ~bmult:(Float.max apd.Pdata.bmult bpd.Pdata.bmult)
          result
      in
      charge_local_cpu t result;
      Obag result
  | Plan.Group_by (key, q) ->
      let pd = exec_to_bag t env q in
      note_op t "groupBy" pd;
      charge_stage t;
      charge_local_cpu t pd;
      let keyfn = udf_fn t env key in
      exec_group_by t key keyfn pd
  | Plan.Agg_by { key; fold; input } ->
      let pd = exec_to_bag t env input in
      note_op t "aggBy" pd;
      charge_stage t;
      charge_local_cpu t pd;
      let keyfn = udf_fn t env key in
      let empty, single, union = fold_runtime t env fold in
      exec_agg_by t key keyfn ~empty ~single ~union pd
  | Plan.Fold (fns, q) ->
      let pd = exec_to_bag t env q in
      note_op t "fold" pd;
      charge_stage t;
      charge_local_cpu t pd;
      let empty, single, union = fold_runtime t env fns in
      (* partial fold per partition (the parallel leaves), then combine the
         partials at the driver — the data-parallel fold of §2.2.2 *)
      let partials =
        Array.to_list
          (par_run t (Pdata.nparts pd) (fun i ->
               List.fold_left
                 (fun acc v -> union acc (single v))
                 empty pd.Pdata.parts.(i)))
      in
      (* each slot holds its partition's accumulator while folding *)
      reserve_memory t ~op:"fold"
        ~needs:
          (Array.of_list
             (List.map
                (fun v -> float_of_int (Value.byte_size v) *. pd.Pdata.bmult)
                partials));
      charge_collect t (list_bytes partials);
      Oscalar (List.fold_left union empty partials)
  | Plan.Union (a, b) ->
      let apd = exec_to_bag t env a in
      let bpd = exec_to_bag t env b in
      charge_stage t;
      Obag (Pdata.union apd bpd)
  | Plan.Minus (a, b) ->
      let apd = exec_to_bag t env a in
      let bpd = exec_to_bag t env b in
      charge_stage t;
      let idkey = Plan.udf_of_expr (Expr.Lam ("x", Expr.Var "x")) in
      let apd = shuffle_by t idkey Fun.id apd in
      let bpd = shuffle_by t idkey Fun.id bpd in
      (* both sides' sort buffers coexist on each slot *)
      reserve_memory t ~op:"minus"
        ~needs:
          (let a = part_needs apd and b = part_needs bpd in
           Array.init
             (max (Array.length a) (Array.length b))
             (fun i ->
               (if i < Array.length a then a.(i) else 0.0)
               +. (if i < Array.length b then b.(i) else 0.0)));
      let parts =
        par_run t (Pdata.nparts apd) (fun i ->
            let da = Emma_databag.Databag.of_list apd.Pdata.parts.(i) in
            let db = Emma_databag.Databag.of_list bpd.Pdata.parts.(i) in
            Emma_databag.Databag.to_list
              (Emma_databag.Databag.minus ~cmp:Value.compare da db))
      in
      charge_local_cpu t apd;
      Obag { Pdata.parts; part_key = Some idkey; rmult = apd.Pdata.rmult; bmult = apd.Pdata.bmult }
  | Plan.Distinct a ->
      let pd = exec_to_bag t env a in
      charge_stage t;
      let idkey = Plan.udf_of_expr (Expr.Lam ("x", Expr.Var "x")) in
      let pd = shuffle_by t idkey Fun.id pd in
      (* per-slot sort/dedup buffer *)
      reserve_memory t ~op:"distinct" ~needs:(part_needs pd);
      charge_local_cpu t pd;
      Obag
        (par_map_parts_preserving t
           (fun part ->
             Emma_databag.Databag.to_list
               (Emma_databag.Databag.distinct ~cmp:Value.compare
                  (Emma_databag.Databag.of_list part)))
           pd)
  | Plan.Cache q -> begin
      (* Transparent here; eager materialization is handled at the handle
         level by the driver (see force_plan). *)
      exec_plan t env q
    end
  | Plan.Partition_by (key, q) ->
      (* no stage charge: enforcing a partitioning is the map-side of the
         shuffle a downstream consumer would otherwise perform itself *)
      let pd = exec_to_bag t env q in
      let keyfn = udf_fn t env key in
      Obag (shuffle_by t key keyfn pd)
  | Plan.Stateful_create { key; init } ->
      let pd = exec_to_bag t env init in
      charge_stage t;
      let keyfn = udf_fn t env key in
      let pd = shuffle_by t key keyfn pd in
      (* per-slot state table of the stateful bag *)
      reserve_memory t ~op:"statefulCreate" ~needs:(part_needs pd);
      let parts =
        par_run t (Pdata.nparts pd) (fun i ->
            let part = pd.Pdata.parts.(i) in
            let h = Hashtbl.create (List.length part) in
            List.iter
              (fun v ->
                let k = keyfn v in
                if Hashtbl.mem h k then
                  raise (Engine_failure "stateful bag: duplicate key")
                else Hashtbl.add h k (ref v))
              part;
            h)
      in
      Ostateful
        { s_key = key;
          s_keyfn = keyfn;
          s_parts = parts;
          s_rmult = pd.Pdata.rmult;
          s_bmult = pd.Pdata.bmult }
  | Plan.Stateful_read x -> begin
      match lookup_env env x with
      | Dstateful sh ->
          charge_stage t;
          let parts =
            Array.map
              (fun h -> Hashtbl.fold (fun _ r acc -> !r :: acc) h [])
              sh.s_parts
          in
          Obag { Pdata.parts; part_key = Some sh.s_key; rmult = sh.s_rmult; bmult = sh.s_bmult }
      | _ -> raise (Engine_failure (Printf.sprintf "%s is not a stateful bag" x))
    end
  | Plan.Stateful_update { state; udf } -> begin
      match lookup_env env state with
      | Dstateful sh ->
          charge_stage t;
          let f = udf_fn t env udf in
          (* each task mutates only its own partition's state cells *)
          let delta_parts =
            par_run t (Array.length sh.s_parts) (fun i ->
                let h = sh.s_parts.(i) in
                let delta = ref [] in
                Hashtbl.iter
                  (fun _ r ->
                    match Value.to_option (f !r) with
                    | Some v' ->
                        r := v';
                        delta := v' :: !delta
                    | None -> ())
                  h;
                !delta)
          in
          let pd =
            { Pdata.parts = delta_parts;
              part_key = Some sh.s_key;
              rmult = sh.s_rmult;
              bmult = sh.s_bmult }
          in
          charge_local_cpu t pd;
          Obag pd
      | _ -> raise (Engine_failure (Printf.sprintf "%s is not a stateful bag" state))
    end
  | Plan.Stateful_update_msgs { state; msg_key; messages; udf } -> begin
      match lookup_env env state with
      | Dstateful sh ->
          let msgs = exec_to_bag t env messages in
          charge_stage t;
          let mkeyfn = udf_fn t env msg_key in
          (* route messages to the state's partitions (free when the
             producing aggregation already partitioned them by key) *)
          let msgs = shuffle_by t sh.s_key mkeyfn msgs in
          charge_local_cpu t msgs;
          let f = udf2_fn t env udf in
          let delta_parts =
            par_run t (Array.length sh.s_parts) (fun i ->
                let h = sh.s_parts.(i) in
                let changed = Hashtbl.create 16 in
                let mpart = if i < Pdata.nparts msgs then msgs.Pdata.parts.(i) else [] in
                List.iter
                  (fun m ->
                    let k = mkeyfn m in
                    match Hashtbl.find_opt h k with
                    | None -> ()
                    | Some r -> begin
                        match Value.to_option (f !r m) with
                        | Some v' ->
                            r := v';
                            Hashtbl.replace changed k r
                        | None -> ()
                      end)
                  mpart;
                Hashtbl.fold (fun _ r acc -> !r :: acc) changed [])
          in
          Obag
            { Pdata.parts = delta_parts;
              part_key = Some sh.s_key;
              rmult = sh.s_rmult;
              bmult = sh.s_bmult }
      | _ -> raise (Engine_failure (Printf.sprintf "%s is not a stateful bag" state))
    end

(* Shuffle to a hash partitioning by [key] unless already co-partitioned.
   The map side — evaluating the key UDF and routing every element — runs
   per partition on the pool; the scatter itself is coordinator-side list
   surgery, reproducing [Pdata.repartition]'s layout exactly. *)
and shuffle_by t key keyfn (pd : Pdata.t) : Pdata.t =
  if Pdata.co_partitioned pd key then pd
  else begin
    charge_shuffle t (Pdata.logical_bytes pd);
    let nparts = max 1 (dop t) in
    inject_fetch_faults t ~bytes:(Pdata.logical_bytes pd) ~nparts;
    let routed =
      par_chunked t
        (List.map (fun v -> (abs (Value.hash (keyfn v)) mod nparts, v)))
        pd
    in
    let parts = Array.make nparts [] in
    Array.iter (List.iter (fun (i, v) -> parts.(i) <- v :: parts.(i))) routed;
    { pd with Pdata.parts = Array.map List.rev parts; Pdata.part_key = Some key }
  end

and exec_group_by t key keyfn (pd : Pdata.t) : out =
  let pd = shuffle_by t key keyfn pd in
  (* group within each partition *)
  let groups_of part =
    let h : (Value.t, Value.t list ref) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun v ->
        let k = keyfn v in
        match Hashtbl.find_opt h k with
        | Some l -> l := v :: !l
        | None -> Hashtbl.add h k (ref [ v ]))
      part;
    Hashtbl.fold
      (fun k l acc -> Value.record [ ("key", k); ("values", Value.bag (List.rev !l)) ] :: acc)
      h []
  in
  let parts = par_run t (Pdata.nparts pd) (fun i -> groups_of pd.Pdata.parts.(i)) in
  let overhead = t.cluster.Cluster.group_overhead in
  let out_rmult = 1.0 and out_bmult = pd.Pdata.bmult *. overhead in
  (* memory check: the largest materialized group must fit in one slot *)
  let max_group_bytes =
    Array.fold_left
      (fun acc part ->
        List.fold_left
          (fun acc g -> max acc (float_of_int (Value.byte_size (Value.field g "values"))))
          acc part)
      0.0 parts
  in
  let max_group_logical = max_group_bytes *. pd.Pdata.bmult *. overhead in
  if max_group_logical > t.cluster.Cluster.mem_per_slot then begin
    if t.profile.Cluster.groupby_spills then charge_spill t max_group_bytes
    else
      raise
        (Engine_failure
           (Printf.sprintf "out of memory: a single group of %.0f MB exceeds the %.0f MB slot budget"
              (max_group_logical /. 1e6)
              (t.cluster.Cluster.mem_per_slot /. 1e6)))
  end;
  let out =
    { Pdata.parts; part_key = Some (group_key_udf ()); rmult = out_rmult; bmult = out_bmult }
  in
  (* budget governance is a second, per-slot layer over the legacy
     single-group check above: the whole hash table of groups a slot
     materializes must fit its budget *)
  reserve_memory t ~op:"groupBy" ~needs:(part_needs out);
  charge_local_cpu t out;
  Obag out

and exec_agg_by t key keyfn ~empty ~single ~union (pd : Pdata.t) : out =
  (* map-side combine: one (key, acc) pair per distinct key per partition *)
  let combine part =
    let h : (Value.t, Value.t ref) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun v ->
        let k = keyfn v in
        match Hashtbl.find_opt h k with
        | Some acc -> acc := union !acc (single v)
        | None -> Hashtbl.add h k (ref (union empty (single v))))
      part;
    Hashtbl.fold (fun k acc l -> Value.tuple [ k; !acc ] :: l) h []
  in
  let combined =
    { Pdata.parts = par_run t (Pdata.nparts pd) (fun i -> combine pd.Pdata.parts.(i));
      part_key = None;
      rmult = 1.0;
      bmult = 1.0 }
  in
  (* the map-side combine hash table: one (key, acc) pair per distinct
     key per partition *)
  reserve_memory t ~op:"aggBy" ~needs:(part_needs combined);
  (* shuffle only the combined aggregates *)
  let pair_key = Plan.udf_of_expr (Expr.Lam ("p", Expr.Proj (Expr.Var "p", 0))) in
  let shuffled =
    if Pdata.co_partitioned pd key then
      (* input was already partitioned by key: aggregates stay local *)
      combined
    else begin
      charge_shuffle t (Pdata.logical_bytes combined);
      inject_fetch_faults t ~bytes:(Pdata.logical_bytes combined) ~nparts:(max 1 (dop t));
      Pdata.repartition ~nparts:(dop t) ~key:pair_key (fun p -> Value.proj p 0) combined
    end
  in
  (* reduce side: merge partials per key *)
  let reduce part =
    let h : (Value.t, Value.t ref) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun pair ->
        let k = Value.proj pair 0 and a = Value.proj pair 1 in
        match Hashtbl.find_opt h k with
        | Some acc -> acc := union !acc a
        | None -> Hashtbl.add h k (ref a))
      part;
    Hashtbl.fold (fun k acc l -> Value.record [ ("key", k); ("agg", !acc) ] :: l) h []
  in
  let out =
    { Pdata.parts =
        par_run t (Pdata.nparts shuffled) (fun i -> reduce shuffled.Pdata.parts.(i));
      part_key = Some (group_key_udf ());
      rmult = 1.0;
      bmult = 1.0 }
  in
  (* the reduce-side merge hash table *)
  reserve_memory t ~op:"aggBy" ~needs:(part_needs out);
  charge_local_cpu t out;
  Obag out

and group_key_udf () = Plan.udf_of_expr (Expr.Lam ("g", Expr.Field (Expr.Var "g", "key")))

and exec_join t env ~semi ~lkey ~rkey (lpd : Pdata.t) (rpd : Pdata.t) : out =
  ignore env;
  charge_stage t;
  let lfn = udf_fn t env lkey and rfn = udf_fn t env rkey in
  let rbytes = Pdata.logical_bytes rpd in
  let lbytes = Pdata.logical_bytes lpd in
  let threshold = t.cluster.Cluster.broadcast_threshold in
  (* JIT strategy selection: under the threshold a side is always
     broadcast; above it the estimated costs decide — the cost-based
     decision the paper's §4/§7 defers to runtime, where both input sizes
     are known. Repartitioning only pays for sides not already
     co-partitioned on their join key. *)
  let broadcast_cost bytes =
    bytes *. t.profile.Cluster.broadcast_factor /. t.cluster.Cluster.net_bw *. 2.0
  in
  let repartition_cost =
    let side pd key = if Pdata.co_partitioned pd key then 0.0 else Pdata.logical_bytes pd in
    (side lpd lkey +. side rpd rkey)
    /. (float_of_int t.cluster.Cluster.nodes *. t.cluster.Cluster.net_bw)
  in
  let small_bytes = if semi then rbytes else Float.min lbytes rbytes in
  let broadcastable =
    match t.cluster.Cluster.join_strategy with
    | Cluster.Force_broadcast -> true
    | Cluster.Force_repartition -> false
    | Cluster.Jit ->
        small_bytes <= threshold || broadcast_cost small_bytes < repartition_cost
  in
  if broadcastable then begin
    if semi then begin
      (* broadcast the right side as a key set; left stays in place *)
      charge_broadcast t (Pdata.logical_bytes rpd);
      reserve_memory t ~op:"semijoin" ~needs:[| Pdata.logical_bytes rpd |];
      let keyset = Hashtbl.create 1024 in
      List.iter (fun v -> Hashtbl.replace keyset (rfn v) ()) (Pdata.to_list rpd);
      charge_local_cpu t lpd;
      (* probe in parallel: the broadcast key set is read-only *)
      Obag
        (par_map_parts_preserving_chunked t
           (List.filter (fun v -> Hashtbl.mem keyset (lfn v)))
           lpd)
    end
    else begin
      (* broadcast the smaller side; build a hash map on it *)
      let small, big, small_fn, big_fn, small_left =
        if lbytes <= rbytes then (lpd, rpd, lfn, rfn, true) else (rpd, lpd, rfn, lfn, false)
      in
      charge_broadcast t (Pdata.logical_bytes small);
      (* the broadcast build side's hash index lives on every slot; it
         must fit one slot's budget *)
      reserve_memory t ~op:"join" ~needs:[| Pdata.logical_bytes small |];
      let index : (Value.t, Value.t list ref) Hashtbl.t = Hashtbl.create 1024 in
      List.iter
        (fun v ->
          let k = small_fn v in
          match Hashtbl.find_opt index k with
          | Some l -> l := v :: !l
          | None -> Hashtbl.add index k (ref [ v ]))
        (Pdata.to_list small);
      charge_local_cpu t big;
      let out_rmult = Float.max lpd.Pdata.rmult rpd.Pdata.rmult in
      let out_bmult = Float.max lpd.Pdata.bmult rpd.Pdata.bmult in
      let join_one v =
        match Hashtbl.find_opt index (big_fn v) with
        | None -> []
        | Some l ->
            List.map
              (fun w -> if small_left then Value.tuple [ w; v ] else Value.tuple [ v; w ])
              !l
      in
      Obag (Pdata.with_mult ~rmult:out_rmult ~bmult:out_bmult
              (par_map_parts_chunked t (List.concat_map join_one) big))
    end
  end
  else begin
    (* repartition join: shuffle both sides by their keys (skipping
       co-partitioned inputs) *)
    let l = shuffle_by t lkey lfn lpd in
    let r = shuffle_by t rkey rfn rpd in
    (* grace-style build: each slot hashes its right partition *)
    reserve_memory t ~op:"join" ~needs:(part_needs r);
    charge_local_cpu t l;
    charge_local_cpu t r;
    (* partition-local build + probe, one task per partition *)
    let parts =
      par_run t (Pdata.nparts l) (fun i ->
          let rpart = if i < Pdata.nparts r then r.Pdata.parts.(i) else [] in
          let index : (Value.t, Value.t list ref) Hashtbl.t =
            Hashtbl.create (List.length rpart)
          in
          List.iter
            (fun v ->
              let k = rfn v in
              match Hashtbl.find_opt index k with
              | Some acc -> acc := v :: !acc
              | None -> Hashtbl.add index k (ref [ v ]))
            rpart;
          if semi then
            List.filter (fun v -> Hashtbl.mem index (lfn v)) l.Pdata.parts.(i)
          else
            List.concat_map
              (fun v ->
                match Hashtbl.find_opt index (lfn v) with
                | None -> []
                | Some ws -> List.map (fun w -> Value.tuple [ v; w ]) !ws)
              l.Pdata.parts.(i))
    in
    let part_key = if semi then Some lkey else None in
    let rmult, bmult =
      if semi then (lpd.Pdata.rmult, lpd.Pdata.bmult)
      else (Float.max lpd.Pdata.rmult rpd.Pdata.rmult, Float.max lpd.Pdata.bmult rpd.Pdata.bmult)
    in
    Obag { Pdata.parts; part_key; rmult; bmult }
  end

(* Anti-join: left elements with NO right match. The right side only
   contributes its key set, so the cheap strategy is almost always to
   broadcast the (pre-projected) keys; when the key set is too large it is
   repartitioned like a regular join. *)
and exec_anti_join t env ~lkey ~rkey (lpd : Pdata.t) (rpd : Pdata.t) : out =
  charge_stage t;
  let lfn = udf_fn t env lkey and rfn = udf_fn t env rkey in
  let rbytes = Pdata.logical_bytes rpd in
  let broadcastable =
    match t.cluster.Cluster.join_strategy with
    | Cluster.Force_broadcast -> true
    | Cluster.Force_repartition -> false
    | Cluster.Jit ->
        rbytes <= t.cluster.Cluster.broadcast_threshold
        || rbytes *. t.profile.Cluster.broadcast_factor /. t.cluster.Cluster.net_bw *. 2.0
           < (Pdata.logical_bytes lpd +. rbytes)
             /. (float_of_int t.cluster.Cluster.nodes *. t.cluster.Cluster.net_bw)
  in
  if broadcastable then begin
    charge_broadcast t rbytes;
    reserve_memory t ~op:"antijoin" ~needs:[| rbytes |];
    let keyset = Hashtbl.create 1024 in
    List.iter (fun v -> Hashtbl.replace keyset (rfn v) ()) (Pdata.to_list rpd);
    charge_local_cpu t lpd;
    Obag
      (par_map_parts_preserving_chunked t
         (List.filter (fun v -> not (Hashtbl.mem keyset (lfn v))))
         lpd)
  end
  else begin
    let l = shuffle_by t lkey lfn lpd in
    let r = shuffle_by t rkey rfn rpd in
    reserve_memory t ~op:"antijoin" ~needs:(part_needs r);
    charge_local_cpu t l;
    charge_local_cpu t r;
    let parts =
      par_run t (Pdata.nparts l) (fun i ->
          let rpart = if i < Pdata.nparts r then r.Pdata.parts.(i) else [] in
          let keyset = Hashtbl.create (List.length rpart) in
          List.iter (fun v -> Hashtbl.replace keyset (rfn v) ()) rpart;
          List.filter (fun v -> not (Hashtbl.mem keyset (lfn v))) l.Pdata.parts.(i))
    in
    Obag
      { Pdata.parts;
        part_key = Some lkey;
        rmult = lpd.Pdata.rmult;
        bmult = lpd.Pdata.bmult }
  end

(* ------------------------------------------------------------------ *)
(* Driver interpretation                                                *)
(* ------------------------------------------------------------------ *)

(* Evaluate a pure driver expression: its free variables are resolved from
   the driver environment (collecting distributed bags — DFL→DRV). *)
and driver_eval_env t env (e : Expr.expr) : Eval.env =
  let fv = Expr.free_vars e in
  Strset.fold
    (fun x acc ->
      match List.assoc_opt x env with
      | None -> acc
      | Some (Dscalar rv) -> Eval.bind x rv acc
      | Some (Dbag h) -> Eval.bind x (Eval.V (Value.bag (force_bag t h))) acc
      | Some (Dstateful _) -> acc)
    fv Eval.empty_env

and eval_driver_expr t env (e : Expr.expr) : Value.t =
  Eval.eval_value t.eval_ctx (driver_eval_env t env e) e

(* Like [eval_driver_expr] but keeps closures: a driver binding may be a
   function later captured by worker UDFs (shipped as a zero-byte
   broadcast, like the native interpreter's driver-bound closures). *)
and eval_driver_rv t env (e : Expr.expr) : Eval.rvalue =
  Eval.eval t.eval_ctx (driver_eval_env t env e) e

let snapshot (env : (string * dval ref) list) : env = List.map (fun (n, r) -> (n, !r)) env

let has_cache_root p =
  let rec go = function
    | Plan.Cache _ -> true
    | Plan.Partition_by (_, q) -> go q
    | _ -> false
  in
  go p

let force_plan t (env : (string * dval ref) list) (p : Plan.t) : dval =
  let snap = snapshot env in
  match Plan.result_kind p with
  | Plan.Rscalar -> begin
      match in_job t (fun () -> exec_plan t snap p) with
      | Oscalar v -> Dscalar (Eval.V v)
      | _ -> raise (Engine_failure "expected a scalar dataflow result")
    end
  | Plan.Rstateful -> begin
      match in_job t (fun () -> exec_plan t snap p) with
      | Ostateful sh -> Dstateful sh
      | _ -> raise (Engine_failure "expected a stateful dataflow result")
    end
  | Plan.Rbag ->
      let cache_loc =
        if has_cache_root p then
          Some (if t.profile.Cluster.memory_cache then Mem else Dfs)
        else None
      in
      let h =
        { h_plan = p;
          h_env = snap;
          h_cache = cache_loc;
          h_mat = None;
          h_memid = None;
          h_epoch = 0;
          h_collected = None }
      in
      let needs_eager =
        Plan.fold_plan
          (fun acc n ->
            acc
            ||
            match n with
            | Plan.Stateful_update _ | Plan.Stateful_update_msgs _
            (* reads of mutable state must be snapshotted at binding time,
               like the native evaluator's eager [bag()] *)
            | Plan.Stateful_read _ ->
                true
            | _ -> false)
          false p
      in
      (* stateful updates have side effects and must run exactly once, now;
         their result is pinned so consumers never re-run the update (and
         state reads are pinned so later mutations stay invisible) *)
      if needs_eager then begin
        let pd =
          match in_job t (fun () -> exec_plan t snap p) with
          | Obag pd -> pd
          | _ -> raise (Engine_failure "expected a bag-valued dataflow")
        in
        h.h_epoch <- t.chaos.loss_epoch;
        h.h_mat <- Some (pd, Mem)
      end;
      Dbag h

let exec_rhs t (env : (string * dval ref) list) (r : Cprog.rhs) : dval =
  match Cprog.plan_of_rhs r with
  | Some p -> force_plan t env p
  | None ->
      (* general driver expression: force each thunk, then evaluate *)
      let env_with_thunks =
        List.fold_left
          (fun acc (n, p) ->
            let snap = snapshot env in
            match Plan.result_kind p with
            | Plan.Rscalar -> begin
                match in_job t (fun () -> exec_plan t snap p) with
                | Oscalar v -> (n, ref (Dscalar (Eval.V v))) :: acc
                | _ -> raise (Engine_failure "expected scalar")
              end
            | Plan.Rbag -> begin
                match in_job t (fun () -> exec_plan t snap p) with
                | Obag pd ->
                    let vs = Pdata.to_list pd in
                    charge_collect t (Pdata.logical_bytes pd);
                    (n, ref (Dscalar (Eval.V (Value.bag vs)))) :: acc
                | _ -> raise (Engine_failure "expected bag")
              end
            | Plan.Rstateful -> begin
                match in_job t (fun () -> exec_plan t snap p) with
                | Ostateful sh -> (n, ref (Dstateful sh)) :: acc
                | _ -> raise (Engine_failure "expected stateful")
              end)
          env r.Cprog.thunks
      in
      Dscalar (eval_driver_rv t (snapshot env_with_thunks) r.Cprog.expr)

let as_bool = function
  | Dscalar (Eval.V (Value.Bool b)) -> b
  | _ -> raise (Engine_failure "expected a boolean driver value")

(* ------------------------------------------------------------------ *)
(* Loop checkpointing                                                   *)
(* ------------------------------------------------------------------ *)

(* Variables assigned anywhere in a statement block — together with the
   in-place-mutated stateful bags in scope, this is the driver-loop state
   a checkpoint must capture. *)
let rec assigned_vars acc stmts =
  List.fold_left
    (fun acc -> function
      | Cprog.CAssign (x, _) -> Strset.add x acc
      | Cprog.CWhile (_, b) -> assigned_vars acc b
      | Cprog.CIf (_, th, el) -> assigned_vars (assigned_vars acc th) el
      | Cprog.CLet _ | Cprog.CVar _ | Cprog.CWrite _ -> acc)
    acc stmts

(* Deep copy of a driver value, detached from every mutable cell the live
   value can reach: handles get fresh memo fields, stateful bags fresh
   hash tables with fresh refs. Applied both when a checkpoint is taken
   and when it is restored, so one checkpoint survives any number of
   restores. *)
let copy_dval = function
  | Dscalar rv -> Dscalar rv
  (* the copy is a fresh record, and it does NOT inherit the registry id:
     the registry's evict closure points at the original handle, so a
     restored copy is simply an unaccounted materialization (touched
     never, evicted never) rather than a stale alias *)
  | Dbag h -> Dbag { h with h_memid = None }
  | Dstateful sh ->
      Dstateful
        { sh with
          s_parts =
            Array.map
              (fun tbl ->
                let c = Hashtbl.create (max 16 (Hashtbl.length tbl)) in
                Hashtbl.iter (fun k r -> Hashtbl.add c k (ref !r)) tbl;
                c)
              sh.s_parts }

(* Logical size of a driver value, for checkpoint accounting. Unforced
   bags checkpoint their lineage (a plan), which is free. *)
let dval_bytes = function
  | Dscalar (Eval.V v) -> float_of_int (Value.byte_size v)
  | Dscalar (Eval.Clo _ | Eval.St _) -> 0.0
  | Dbag h -> begin
      match (h.h_mat, h.h_collected) with
      | Some (pd, _), _ -> Pdata.logical_bytes pd
      | None, Some (_, lbytes, _) -> lbytes
      | None, None -> 0.0
    end
  | Dstateful sh ->
      sh.s_bmult
      *. Array.fold_left
           (fun acc tbl ->
             Hashtbl.fold (fun _ r acc -> acc +. float_of_int (Value.byte_size !r)) tbl acc)
           0.0 sh.s_parts

(* Deterministic textual fingerprint of checkpointed loop state — the
   payload whose CRC32 guards the record on the simulated DFS. Values are
   rendered through [Value.pp]; partition and hash-table contents are
   sorted so the fingerprint is identical across runs and domain counts.
   Closures and unforced lineage fingerprint as opaque markers: they are
   code, not data, and cannot rot on disk. *)
let fingerprint_state (st : (string * dval) list) : Bytes.t =
  let buf = Buffer.create 256 in
  let render v = Format.asprintf "%a" Value.pp v in
  let add_sorted parts = List.iter (Buffer.add_string buf) (List.sort String.compare parts) in
  List.iter
    (fun (x, d) ->
      Buffer.add_string buf x;
      Buffer.add_char buf '=';
      (match d with
      | Dscalar (Eval.V v) -> Buffer.add_string buf (render v)
      | Dscalar (Eval.Clo _ | Eval.St _) -> Buffer.add_string buf "<fun>"
      | Dbag h -> (
          match (h.h_mat, h.h_collected) with
          | Some (pd, _), _ ->
              add_sorted
                (List.concat_map (List.map render) (Array.to_list pd.Pdata.parts))
          | None, Some (vs, _, _) -> add_sorted (List.map render vs)
          | None, None -> Buffer.add_string buf "<lineage>")
      | Dstateful sh ->
          add_sorted
            (Array.to_list sh.s_parts
            |> List.concat_map (fun tbl ->
                   Hashtbl.fold
                     (fun k r acc -> (render k ^ "=" ^ render !r) :: acc)
                     tbl [])));
      Buffer.add_char buf ';')
    st;
  Buffer.to_bytes buf

(* A checkpoint record as "written to DFS": the live snapshot used for
   restore, plus the payload fingerprint and the CRC32 computed at write
   time. Injected corruption flips a payload byte AFTER the CRC was
   taken; the restore path recomputes the CRC and skips mismatches. *)
type checkpoint = {
  ck_state : (string * dval) list;
  ck_iter : int;  (* completed iterations at snapshot time *)
  ck_on_dfs : bool;  (* the loop-entry snapshot is free driver memory *)
  ck_payload : Bytes.t;
  ck_crc : int;
}

let run t (prog : Cprog.t) : Value.t =
  let wall_start = Unix.gettimeofday () in
  let rec exec_block env stmts = List.fold_left exec_stmt env stmts
  and exec_stmt env s =
    match s with
    | Cprog.CLet (x, r) | Cprog.CVar (x, r) -> (x, ref (exec_rhs t env r)) :: env
    | Cprog.CAssign (x, r) -> begin
        match List.assoc_opt x env with
        | Some cell ->
            cell := exec_rhs t env r;
            env
        | None -> raise (Engine_failure (Printf.sprintf "assignment to unbound %s" x))
      end
    | Cprog.CWhile (c, body) ->
        (* With native iteration support, the loop's dataflows are deployed
           once and re-driven through feedback edges: iterations after the
           first pay a reduced submission overhead. *)
        let saved = t.iteration_rerun in
        (* Loop state for checkpointing: every cell the body assigns plus
           every stateful bag in scope (mutated in place by the stateful
           update operators). An injected loop loss restores the last
           checkpoint — or the free loop-entry snapshot when checkpointing
           is off — and replays iterations from there; the replay is
           deterministic, so the final result is bit-identical to the
           fault-free run. *)
        let targets = assigned_vars Strset.empty body in
        let state_cells =
          List.filter
            (fun (x, cell) ->
              Strset.mem x targets
              || (match !cell with Dstateful _ -> true | _ -> false))
            env
        in
        let snap () = List.map (fun (x, cell) -> (x, copy_dval !cell)) state_cells in
        let state_bytes st = List.fold_left (fun acc (_, d) -> acc +. dval_bytes d) 0.0 st in
        let restore st =
          List.iter
            (fun (x, d) ->
              match List.assoc_opt x env with
              | Some cell -> cell := copy_dval d
              | None -> ())
            st
        in
        let rc = recovery t in
        let dfs_s bytes =
          bytes /. (float_of_int t.cluster.Cluster.nodes *. t.cluster.Cluster.disk_bw)
        in
        (* Checkpoint records, newest first. The loop-entry snapshot is
           the final fallback and never corrupts — it is driver memory,
           not a DFS record. *)
        let ckpts =
          ref
            [ { ck_state = snap ();
                ck_iter = 0;
                ck_on_dfs = false;
                ck_payload = Bytes.empty;
                ck_crc = 0 } ]
        in
        let restarts = ref 0 in
        (* Walk newest → oldest, paying the DFS read for every record
           examined; a record whose payload no longer matches its CRC32
           is corrupt — count it, skip it, fall back to the previous
           good one. *)
        let pick_checkpoint () =
          let rec go = function
            | [] -> assert false (* the loop-entry snapshot always remains *)
            | ck :: rest ->
                if ck.ck_on_dfs then charge t (dfs_s (state_bytes ck.ck_state));
                if ck.ck_on_dfs && Crc32.bytes ck.ck_payload <> ck.ck_crc then begin
                  t.metrics.Metrics.checkpoint_corruptions <-
                    t.metrics.Metrics.checkpoint_corruptions + 1;
                  recovery_instant t "checkpoint_corrupt"
                    [ ("iteration", Trace.A_int ck.ck_iter) ];
                  go rest
                end
                else ck
          in
          go !ckpts
        in
        let rec loop iter =
          if as_bool (exec_rhs t env c) then begin
            if iter > 0 && t.profile.Cluster.native_iterations then
              t.iteration_rerun <- true;
            ignore (exec_block env body);
            let iter = iter + 1 in
            (match t.checkpoint_every with
            | Some k when iter mod k = 0 ->
                let st = snap () in
                let bytes = state_bytes st in
                t.metrics.Metrics.checkpoints <- t.metrics.Metrics.checkpoints + 1;
                t.metrics.Metrics.checkpoint_bytes <-
                  t.metrics.Metrics.checkpoint_bytes +. bytes;
                (* priced like a DFS write, but counted only in the
                   checkpoint channel so the plain I/O metrics stay
                   untouched by the chaos subsystem *)
                charge t (dfs_s bytes);
                let payload = fingerprint_state st in
                let crc = Crc32.bytes payload in
                t.chaos.ckpt_seq <- t.chaos.ckpt_seq + 1;
                if
                  chaos_active t
                  && Faults.ckpt_corrupt t.faults ~ckpt:t.chaos.ckpt_seq
                  && Bytes.length payload > 0
                then begin
                  (* simulated bit rot, injected AFTER the CRC was taken:
                     flip one payload byte, which is exactly what on-disk
                     corruption looks like to the restore path *)
                  let i = Bytes.length payload / 2 in
                  Bytes.set payload i
                    (Char.chr (Char.code (Bytes.get payload i) lxor 0x40))
                end;
                recovery_instant t "checkpoint"
                  [ ("iteration", Trace.A_int iter); ("bytes", Trace.A_float bytes) ];
                ckpts :=
                  { ck_state = st;
                    ck_iter = iter;
                    ck_on_dfs = true;
                    ck_payload = payload;
                    ck_crc = crc }
                  :: !ckpts
            | _ -> ());
            if chaos_active t then begin
              t.chaos.boundary_seq <- t.chaos.boundary_seq + 1;
              if
                Faults.loop_loss t.faults ~boundary:t.chaos.boundary_seq
                && !restarts < rc.Cluster.max_loop_restarts
              then begin
                (* driver loses its loop state: roll back to the last
                   checkpoint and replay. The restart cap guarantees
                   termination even at loss rate 1.0. *)
                incr restarts;
                let ck = pick_checkpoint () in
                t.metrics.Metrics.loop_restores <- t.metrics.Metrics.loop_restores + 1;
                restore ck.ck_state;
                recovery_instant t "loop_restore"
                  [ ("boundary", Trace.A_int t.chaos.boundary_seq);
                    ("from_iteration", Trace.A_int ck.ck_iter);
                    ("lost_iterations", Trace.A_int (iter - ck.ck_iter)) ];
                loop ck.ck_iter
              end
              else loop iter
            end
            else loop iter
          end
        in
        loop 0;
        t.iteration_rerun <- saved;
        env
    | Cprog.CIf (c, th, el) ->
        ignore (exec_block env (if as_bool (exec_rhs t env c) then th else el));
        env
    | Cprog.CWrite (name, r) -> begin
        match exec_rhs t env r with
        | Dbag h ->
            let pd = materialize t h in
            charge_dfs_write t (Pdata.logical_bytes pd);
            Eval.register_table t.eval_ctx name (Pdata.to_list pd);
            env
        | Dscalar (Eval.V (Value.Bag vs)) ->
            charge_dfs_write t (list_bytes vs);
            Eval.register_table t.eval_ctx name vs;
            env
        | _ -> raise (Engine_failure "write: expected a bag")
      end
  in
  Fun.protect
    ~finally:(fun () ->
      (* real elapsed time, the engine's only wall-clock (not simulated)
         figure — accumulated even when the run raises *)
      t.metrics.Metrics.wall_time_s <-
        t.metrics.Metrics.wall_time_s +. (Unix.gettimeofday () -. wall_start))
    (fun () ->
      let env = exec_block [] prog.Cprog.cbody in
      match exec_rhs t env prog.Cprog.cret with
      | Dscalar (Eval.V v) -> v
      | Dbag h -> Value.bag (force_bag t h)
      | Dscalar (Eval.Clo _) -> raise (Engine_failure "program returned a function")
      | Dscalar (Eval.St _) | Dstateful _ ->
          raise (Engine_failure "program returned a stateful bag"))
