(** Deterministic memory governance for the simulated engine.

    A [Memman.t] is a coordinator-side accountant that gives every
    execution slot a {e logical} byte budget (the unit the cost model
    charges — physical × [data_scale]) and answers, for each
    state-building operator ({i groupBy}/{i aggBy} hash tables, join
    build sides, fold partials, sort buffers), what happens when the
    state exceeds it:

    {ul
    {- {b spill} ([spill = true]) — the overflowing slots run an external
       (partitioned, grace-style) version of the operator; {!Exec} prices
       the overflow as two disk passes and counts it in the dedicated
       [mem_spills]/[mem_spill_bytes] channels;}
    {- {b OOM kill} ([spill = false]) — the attempt is killed and retried
       at halved parallelism, doubling the surviving slots' memory share
       up to the node's whole memory ([slots_per_node] × budget); beyond
       that the job fails, like a container runtime would kill it for
       good.}}

    It also owns the LRU registry of [Mem]-cached bags (total capacity
    [budget × dop]; admitting a new bag evicts least-recently-used ones,
    which are rebuilt through lineage on next access) and the
    admission-control gate ([max_inflight]) that queues job submissions
    past the in-flight budget.

    {b Determinism.} Every verdict is a pure function of the reservation
    sizes presented in execution order — reservations, evictions and
    queue delays are identical across hosts and domain counts.

    {b Minimum budget.} With spilling enabled, {e any} positive budget
    produces results bit-identical to the unbounded run (spilling only
    adds simulated I/O time). With spilling disabled, the minimum safe
    budget is [peak / slots_per_node] where [peak] is the largest
    per-slot reservation of the unbounded run ([mem_peak_bytes]): beyond
    that, even one slot per node cannot hold the state and the job
    fails. Property-tested in [test/test_memman.ml]. *)

type t

val create :
  ?budget:float ->
  ?spill:bool ->
  ?max_inflight:int ->
  slots_per_node:int ->
  dop:int ->
  unit ->
  t
(** [create ()] is an unbounded accountant: it tracks the peak
    reservation but never spills, kills, evicts or queues — the engine
    behaves exactly as if the subsystem did not exist. [budget] (logical
    bytes per slot, > 0) turns governance on; [spill] picks spill-to-disk
    over OOM-kill on overflow (default [false]); [max_inflight] (>= 1)
    turns admission control on.

    @raise Invalid_argument on [budget <= 0] or [max_inflight < 1]. *)

val governed : t -> bool
(** Whether a budget is set (any verdict other than [Fits] is possible). *)

val budget : t -> float
(** The per-slot budget, or [infinity] when unbounded. *)

val spill_enabled : t -> bool
val peak : t -> float
(** Largest per-slot reservation seen so far (logical bytes). *)

(** The accountant's answer to one reservation. *)
type verdict =
  | Fits  (** every slot's state fits its budget *)
  | Spill of { slots : int; bytes : float }
      (** [slots] slots overflow by [bytes] logical bytes in total and
          run externally (spilling enabled) *)
  | Kill of { attempts : int }
      (** the attempt is OOM-killed [attempts] times, each retry halving
          parallelism, until the state fits [budget × 2^attempts]
          (spilling disabled) *)
  | Fatal
      (** the state exceeds [budget × slots_per_node] — it cannot fit a
          node's whole memory and the job must fail *)

val reserve : t -> needs:float array -> verdict
(** [reserve t ~needs] presents one operator's per-slot state sizes
    (logical bytes, one array cell per slot holding state) and returns
    the verdict. Always updates {!peak}; always [Fits] when no budget is
    set. *)

(** {2 Cached-bag registry} *)

type admission = { admitted : int option; evicted : float list }
(** [admitted] is the registry id of the newly cached bag ([None] when
    governance is off — nothing to track — or when the bag alone exceeds
    the cache capacity and is not cached at all); [evicted] lists the
    byte sizes of LRU entries dropped to make room. *)

val register : t -> bytes:float -> evict:(unit -> unit) -> admission
(** Admit a freshly materialized [Mem]-cached bag of [bytes] logical
    bytes. Evicts least-recently-used entries (calling their [evict]
    callbacks, which drop the handle's materialization so the next access
    recomputes through lineage) until it fits the capacity
    [budget × dop]. *)

val touch : t -> int -> unit
(** LRU bump on a cache hit. Unknown ids are ignored. *)

val forget : t -> int -> unit
(** Remove an entry whose materialization was dropped for another reason
    (executor loss, epoch invalidation) — does {e not} call its evict
    callback and counts nothing. Unknown ids are ignored. *)

val cached_bytes : t -> float
(** Total logical bytes currently admitted in the registry. *)

(** {2 Admission control}

    A job submission occupies an admission slot from submission until
    [job_overhead_s] of simulated time {e after} its completion (the
    driver-side teardown window). With [max_inflight] slots all held, a
    new submission waits for the earliest release. *)

val admit_job : t -> now:float -> float
(** [admit_job t ~now] takes an admission slot and returns the simulated
    delay (0 when a slot is free or admission control is off). The
    caller charges the delay before running the job. *)

val job_done : t -> release:float -> unit
(** Releases the running job's admission slot at simulated time
    [release] (completion + teardown window). *)
