(** First-class engine configuration.

    One record consolidates every execution knob that previously traveled
    as nine separate optional arguments duplicated across
    [Emma.run_on], [Emma.run_on_exn], {!Exec.create} and the CLI. Build
    one with {!default} and the functional [with_*] setters (or
    {!of_cli} from raw flag values), then hand it to
    [Emma.Session.create] / [Exec.create ?config] — the per-knob
    optional arguments survive only as deprecated shims.

    [Config] is also the canonical home of {!udf_mode} and
    {!chunk_spec}; {!Exec} re-exports both so existing
    [Engine.Interp] / [Engine.Chunk_auto] call sites keep compiling. *)

type udf_mode =
  | Interp  (** tree-walk every UDF body per tuple with {!Emma_lang.Eval} *)
  | Compiled
      (** stage each UDF body once through {!Emma_lang.Compile} into a
          host closure (the default) *)

(** Chunk-size policy for the adaptive-chunking barriers: [Chunk_auto]
    sizes chunks from the cost model's per-row estimate with a
    granularity floor; [Chunk_fixed k] pins k physical rows per chunk
    (the CLI's [--chunk N]). *)
type chunk_spec = Chunk_auto | Chunk_fixed of int

(** Per-tenant circuit-breaker policy for [emma serve]: after
    [br_threshold] consecutive [Failed]/[Timed_out]/[Cancelled] outcomes
    a tenant's circuit opens (its queued queries fast-fail as shed), then
    half-opens [br_cooldown_s] simulated seconds later and probes with a
    single query — a good probe closes the circuit, a bad one re-opens
    it. All transitions happen on the coordinator as pure functions of
    recorded outcomes and the simulated clock, so they replay
    bit-identically. *)
type breaker_spec = { br_threshold : int; br_cooldown_s : float }

type t = {
  udf_mode : udf_mode;  (** worker-side UDF execution (default [Compiled]) *)
  faults : Faults.t;  (** deterministic fault plan (default {!Faults.none}) *)
  checkpoint_every : int option;
      (** checkpoint driver-loop state every [k] iterations (default off) *)
  mem_budget : float option;
      (** logical bytes per slot; turns on memory governance (default
          unbounded) *)
  spill : bool;
      (** overflowing slots spill to simulated disk instead of OOM-killing
          (default [false]) *)
  max_inflight : int option;
      (** job-admission gate: at most this many jobs in flight (default
          unbounded) *)
  pool : Emma_util.Pool.t option;
      (** domain pool for per-partition work (default: the ambient
          {!Emma_util.Pool.default}, or a session-owned pool when
          [domains] is set) *)
  chunk : chunk_spec;  (** chunking policy (default [Chunk_auto]) *)
  trace : Emma_util.Trace.t option;
      (** span tracer (default: the ambient {!Emma_util.Trace.global}) *)
  domains : int option;
      (** when set and [pool] is [None], sessions create (and own) a
          dedicated pool of this many domains *)
  plan_cache : int option;
      (** plan-cache capacity for sessions: [Some n] keeps the [n] most
          recently used compiled plans (default [Some 64]); [None] turns
          the cache off. Ignored by bare [Exec.create]. *)
  timeout_s : float option;
      (** simulated-clock execution timeout (default none) — the
          canonical home of the knob historically passed as
          [Session.spark ?timeout_s]. Sessions reject conflicting values
          between the runtime shim and this field. *)
  deadline_s : float option;
      (** per-query latency budget on the simulated clock (default
          none): the engine raises a classified [Cancelled] outcome as
          soon as the query's own simulated time exceeds it. Distinct
          from [timeout_s] (an operator limit) — a deadline is a service
          objective, checked at the same safepoints. *)
  max_queue : int option;
      (** serve-layer knob: bounded per-tenant queue depth; arrivals past
          the bound are shed by a seeded-deterministic policy (default
          unbounded). Ignored by bare [Exec.create]. *)
  breaker : breaker_spec option;
      (** serve-layer knob: per-tenant circuit breaker (default off).
          Ignored by bare [Exec.create]. *)
  drain_after_s : float option;
      (** serve-layer knob: stop admitting queries after this many
          simulated seconds, shedding later arrivals and finishing or
          cancelling in-flight work by deadline (default: never drain).
          Ignored by bare [Exec.create]. *)
  wal_dir : string option;
      (** serve-layer knob: directory of the durable write-ahead journal
          ([--wal DIR] / [--recover DIR]); default off. Ignored by bare
          [Exec.create]. *)
  wal_sync : Emma_util.Wal.sync_policy;
      (** fsync policy for journal appends (default {!Emma_util.Wal.Sync_none});
          only meaningful with [wal_dir]. *)
  snapshot_every : int option;
      (** write a recovery snapshot every [k] outcome records (default:
          no snapshots — recovery replays the whole journal); only
          meaningful with [wal_dir]. *)
}

val default : t
(** [Compiled] UDFs, no chaos, unbounded memory and admission, ambient
    pool and tracer, auto chunking, a 64-entry plan cache. *)

val with_udf_mode : udf_mode -> t -> t
val with_faults : Faults.t -> t -> t
val with_checkpoint_every : int option -> t -> t
val with_mem_budget : float option -> t -> t
val with_spill : bool -> t -> t
val with_max_inflight : int option -> t -> t
val with_pool : Emma_util.Pool.t option -> t -> t
val with_chunk : chunk_spec -> t -> t
val with_trace : Emma_util.Trace.t option -> t -> t
val with_domains : int option -> t -> t
val with_plan_cache : int option -> t -> t
val with_timeout_s : float option -> t -> t
val with_deadline_s : float option -> t -> t
val with_max_queue : int option -> t -> t
val with_breaker : breaker_spec option -> t -> t
val with_drain_after_s : float option -> t -> t
val with_wal_dir : string option -> t -> t
val with_wal_sync : Emma_util.Wal.sync_policy -> t -> t
val with_snapshot_every : int option -> t -> t

val parse_udf_mode : string -> (udf_mode, string) result
(** ["interp"] / ["compiled"] (case-insensitive). *)

val parse_chunk : string -> (chunk_spec, string) result
(** ["auto"] or a row count >= 1. *)

val parse_plan_cache : string -> (int option, string) result
(** ["off"] / ["0"] disables; a capacity >= 1 enables. *)

val parse_breaker : string -> (breaker_spec option, string) result
(** ["off"] disables; ["K"] or ["K:COOLDOWN_S"] opens a tenant's circuit
    after [K >= 1] consecutive bad outcomes with a cooldown of
    [COOLDOWN_S > 0] seconds (default 30). *)

val of_cli :
  ?base:t ->
  ?udf_mode:string ->
  ?chunk:string ->
  ?chaos_seed:int ->
  ?chaos_rates:string ->
  ?checkpoint_every:int ->
  ?mem_per_slot:float ->
  ?spill:bool ->
  ?max_inflight:int ->
  ?domains:int ->
  ?plan_cache:string ->
  ?timeout:float ->
  ?deadline:float ->
  ?max_queue:int ->
  ?breaker:string ->
  ?drain_after:float ->
  ?wal:string ->
  ?wal_sync:string ->
  ?snapshot_every:int ->
  unit ->
  (t, string) result
(** The one shared flag-validation path for [run], [bench] and [serve]:
    each argument is the raw CLI value of the flag of the same name;
    absent flags keep [base] (default {!default}). Every rejection is a
    one-line actionable message — callers print it and exit 2.
    [--chaos-rates] without [--chaos-seed] is rejected, matching the
    historical CLI behavior. *)

val udf_mode_to_string : udf_mode -> string
val chunk_to_string : chunk_spec -> string

val to_json : t -> Emma_util.Json.t
(** Pinned rendering for reports; the pool/trace fields render as
    presence flags ("custom"/"default", enabled bool), not contents. *)
