(** Deterministic fault injection: the engine's chaos subsystem.

    A {e fault plan} decides, at well-defined injection points inside
    {!Exec}, whether a simulated failure occurs:

    {ul
    {- {b task-attempt failures} — a partition task of an operator barrier
       dies and is retried with exponential backoff (bounded by
       {!Cluster.recovery.max_task_attempts}); repeated failures blacklist
       the offending node;}
    {- {b executor loss} — a node dies at a barrier: its in-flight tasks
       fail, and memory-cached partitions materialized before the loss are
       gone on their next use (recovered through lineage; DFS-backed caches
       survive);}
    {- {b shuffle-fetch failures} — a reducer loses one mapper's output
       chunk and re-fetches it;}
    {- {b stragglers} — a slot runs a task at a configured slowdown; the
       engine launches a speculative copy and the first finisher wins;}
    {- {b loop loss} — the driver loses its loop state at an iteration
       boundary and restarts from the last checkpoint (or from the loop
       entry when checkpointing is off).}}

    Every decision is a {e pure} function of the plan's seed and the
    injection point's identity ({!Emma_util.Prng.hash_unit}), so plans are
    reproducible, independent of evaluation order, and independent of the
    domain count running partition work.

    {b Invariant} (property-tested in [test/test_faults.ml]): for any
    fault plan, job results are bit-identical to the fault-free run;
    recovery changes only the simulated clock and the clearly-scoped
    recovery channels in {!Metrics} ([retries], [recomputed_partitions],
    [speculative_launches]/[_wins], [checkpoint_bytes], …) plus whatever
    lineage re-execution legitimately re-runs ([recomputes], [stages],
    [udf_invocations]). With the empty plan ({!none}) the engine behaves
    exactly as if the subsystem did not exist. *)

(** Per-injection-point probabilities, all in [0, 1]. *)
type rates = {
  task_fail : float;  (** per task attempt *)
  executor_loss : float;  (** per barrier: a node dies *)
  fetch_fail : float;  (** per (shuffle, reducer): one mapper chunk lost *)
  straggler : float;  (** per (stage, partition): task runs slow *)
  straggler_slowdown : float;
      (** multiplier on a straggler's task time (>= 1) *)
  loop_loss : float;  (** per loop-iteration boundary: driver state lost *)
  oom_kill : float;
      (** per memory reservation: the attempt is OOM-killed by the
          (simulated) container supervisor and retried at reduced
          parallelism, regardless of whether it actually fit its budget *)
}

val zero_rates : rates
(** All rates 0 — a seeded plan with these injects nothing. *)

val default_rates : rates
(** Moderate chaos for smoke tests and the CLI default: a few percent on
    each channel, 4× straggler slowdown. *)

val rates_of_string : string -> (rates, string) result
(** Parses
    ["task=0.1,exec=0.02,fetch=0.05,straggle=0.1,slow=4,loop=0.02,oom=0.01"]
    (any subset of keys; unlisted keys stay 0). Probabilities outside
    [0, 1] (and [slow < 1]) are rejected with a one-line error rather
    than clamped, so the CLI can fail fast on misspelled chaos plans. *)

(** A scripted injection: fires at an exact point instead of by rate.
    Points are identified by the engine's deterministic sequence counters
    (barriers, shuffles, cache hits and loop boundaries are numbered from
    1 in execution order, identically at any domain count). *)
type event =
  | Cache_loss of int
      (** the cached result serving the k-th cache hit is lost (the legacy
          [?cache_loss_at] channel) *)
  | Task_fail of { barrier : int; part : int; attempts : int }
      (** the task for [part] fails [attempts] times in barrier [barrier];
          scripted counts are NOT capped, so [attempts >=]
          [max_task_attempts] fails the job *)
  | Exec_loss of { barrier : int; node : int }
      (** node [node] dies at barrier [barrier] *)
  | Fetch_fail of { shuffle : int; part : int; times : int }
      (** reducer [part] of shuffle [shuffle] loses a mapper chunk
          [times] times *)
  | Straggle of { stage : int; part : int; slowdown : float }
      (** partition [part] of CPU stage [stage] runs [slowdown]× slow *)
  | Loop_loss of int  (** driver state lost at the k-th loop boundary *)
  | Oom_kill of int
      (** the attempt holding the k-th memory reservation is OOM-killed
          (reservations are numbered from 1 in execution order,
          identically at any domain count) *)
  | Ckpt_corrupt of int
      (** the k-th loop checkpoint written is corrupted on disk (a byte
          of its payload is flipped); detected by CRC32 on restore and
          skipped in favour of the previous good checkpoint *)

type t
(** A fault plan: a seed, rate knobs, and scripted events. *)

val none : t
(** The empty plan: injects nothing, ever. *)

val is_none : t -> bool

val seeded : ?rates:rates -> int -> t
(** [seeded seed] draws every injection decision from [rates] (default
    {!default_rates}) keyed by [seed] and the injection point. Seeded
    task failures are capped below the retry bound, so a seeded plan can
    slow a job down but never fail it. *)

val scripted : event list -> t
(** Fires exactly the listed events and nothing else. *)

val of_cache_loss_at : int list -> t
(** Convenience: [of_cache_loss_at [2; 4]] loses the cached copy at cache
    hits 2 and 4. Equivalent to
    [scripted (List.map (fun k -> Cache_loss k) …)]. *)

val add_events : t -> event list -> t
(** Extends a plan with scripted events. *)

(** {2 Decision queries} — consulted by {!Exec} on the coordinator.
    All are pure. *)

val task_failures : t -> barrier:int -> part:int -> cap:int -> int
(** Number of failed attempts injected for this task. Seeded draws are
    capped at [cap] (the scheduler eventually finds a healthy node);
    scripted counts are returned uncapped. *)

val executor_loss : t -> barrier:int -> nodes:int -> int option
(** The node that dies at this barrier, if any. *)

val fetch_failures : t -> shuffle:int -> part:int -> int
(** Lost-chunk count for this reducer in this shuffle. *)

val straggler : t -> stage:int -> part:int -> float option
(** Slowdown factor (> 1) when this partition's task straggles. *)

val cache_loss : t -> hit:int -> bool
(** Whether the cached copy serving this (1-based) cache hit is lost. *)

val loop_loss : t -> boundary:int -> bool
(** Whether driver loop state is lost at this (1-based, globally numbered)
    iteration boundary. *)

val oom_kill : t -> reservation:int -> bool
(** Whether the attempt holding this (1-based, globally numbered) memory
    reservation is OOM-killed by the simulated container supervisor. *)

val ckpt_corrupt : t -> ckpt:int -> bool
(** Whether the (1-based, globally numbered) k-th checkpoint written is
    corrupted on disk. Scripted-only: there is no rate for corruption. *)
