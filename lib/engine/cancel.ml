(* Cooperative cancellation tokens.

   A token is a one-way latch: once requested it stays requested. The
   engine polls it at its cost-charging safepoints (the same choke points
   [timeout_s] uses — stage barriers, partition-task dispatch, the
   recovery loop), so cancellation is prompt without preempting worker
   domains mid-task. The reason string travels with the request and is
   surfaced in the classified [Cancelled] outcome.

   The write-reason-then-set-flag order means a reader that observes the
   flag also observes the reason (release/acquire on the atomic). *)

type t = { flag : bool Atomic.t; mutable reason : string }

let create () = { flag = Atomic.make false; reason = "cancelled" }

let request ?(reason = "cancelled") t =
  if not (Atomic.get t.flag) then begin
    t.reason <- reason;
    Atomic.set t.flag true
  end

let is_requested t = Atomic.get t.flag
let reason t = t.reason
