type join_strategy = Jit | Force_broadcast | Force_repartition

type recovery = {
  max_task_attempts : int;
  retry_backoff_s : float;
  blacklist_after : int;
  speculate : bool;
  max_loop_restarts : int;
}

let default_recovery =
  {
    max_task_attempts = 4;
    retry_backoff_s = 0.5;
    blacklist_after = 3;
    speculate = true;
    max_loop_restarts = 3;
  }

type t = {
  nodes : int;
  slots_per_node : int;
  net_bw : float;
  disk_bw : float;
  cpu_bw : float;
  per_record_cpu : float;
  mem_per_slot : float;
  data_scale : float;
  broadcast_threshold : float;
  pair_scan_cost : float;
  group_overhead : float;
  table_scales : (string * float) list;
  join_strategy : join_strategy;
  recovery : recovery;
}

let dop c = c.nodes * c.slots_per_node
let with_mem_per_slot c mem = { c with mem_per_slot = mem }

let table_scale c name =
  match List.assoc_opt name c.table_scales with
  | Some s -> s
  | None -> c.data_scale

let paper_cluster ?(dop = 320) ?(data_scale = 1.0) ?(table_scales = []) () =
  let nodes = 40 in
  {
    nodes;
    slots_per_node = max 1 (dop / nodes);
    net_bw = 120e6;
    disk_bw = 100e6;
    cpu_bw = 80e6;
    per_record_cpu = 0.5e-6;
    mem_per_slot = 1.0e9;
    data_scale;
    broadcast_threshold = 64e6;
    pair_scan_cost = 2e-9;
    group_overhead = 4.0;
    table_scales;
    join_strategy = Jit;
    recovery = default_recovery;
  }

let laptop () =
  {
    nodes = 4;
    slots_per_node = 2;
    net_bw = 100e6;
    disk_bw = 100e6;
    cpu_bw = 100e6;
    per_record_cpu = 1e-6;
    mem_per_slot = 64e6;
    data_scale = 1.0;
    broadcast_threshold = 1e6;
    pair_scan_cost = 2e-9;
    group_overhead = 4.0;
    table_scales = [];
    join_strategy = Jit;
    recovery = default_recovery;
  }

type profile = {
  profile_name : string;
  broadcast_factor : float;
  memory_cache : bool;
  job_overhead_s : float;
  sched_linear_s : float;
  sched_quad_s : float;
  groupby_spills : bool;
  native_iterations : bool;
}

let spark_like =
  {
    profile_name = "Spark";
    broadcast_factor = 1.0;
    memory_cache = true;
    job_overhead_s = 1.0;
    sched_linear_s = 0.006;
    sched_quad_s = 6e-6;
    groupby_spills = false;
    native_iterations = false;
  }

let flink_like =
  {
    profile_name = "Flink";
    broadcast_factor = 5.0;
    memory_cache = false;
    job_overhead_s = 0.2;
    sched_linear_s = 0.003;
    sched_quad_s = 0.0;
    groupby_spills = true;
    native_iterations = true;
  }
