module Value = Emma_value.Value
module Plan = Emma_dataflow.Plan
module Pool = Emma_util.Pool

type t = {
  parts : Value.t list array;
  part_key : Plan.udf option;
  rmult : float;
  bmult : float;
}

let nparts t = Array.length t.parts

let of_list ?pool ?(rmult = 1.0) ?(bmult = 1.0) ~nparts vs =
  let n = max 1 nparts in
  match pool with
  | Some p when Pool.size p > 1 && n > 1 && vs <> [] ->
      (* same round-robin layout as the sequential path, but each partition
         extracts its residue class by index stride on the pool *)
      let arr = Array.of_list vs in
      let len = Array.length arr in
      let slice r =
        let last = if len > r then r + ((len - 1 - r) / n * n) else -1 in
        let rec go i acc = if i < r then acc else go (i - n) (arr.(i) :: acc) in
        if last < 0 then [] else go last []
      in
      { parts = Pool.parmap p slice (Array.init n Fun.id);
        part_key = None;
        rmult;
        bmult }
  | _ ->
      let parts = Array.make n [] in
      List.iteri (fun i v -> parts.(i mod n) <- v :: parts.(i mod n)) vs;
      { parts = Array.map List.rev parts; part_key = None; rmult; bmult }

let init ?pool ?(rmult = 1.0) ?(bmult = 1.0) ~nparts f =
  let n = max 1 nparts in
  let parts =
    match pool with
    | Some p when Pool.size p > 1 && n > 1 -> Pool.parmap p f (Array.init n Fun.id)
    | _ -> Array.init n f
  in
  { parts; part_key = None; rmult; bmult }

let with_mult ~rmult ~bmult t = { t with rmult; bmult }

let to_list t = List.concat (Array.to_list t.parts)

let part_records t = Array.map List.length t.parts
let records t = Array.fold_left (fun acc p -> acc + List.length p) 0 t.parts
let logical_records t = float_of_int (records t) *. t.rmult

let part_bytes t =
  Array.map
    (fun p -> List.fold_left (fun acc v -> acc +. float_of_int (Value.byte_size v)) 0.0 p)
    t.parts

let bytes t = Array.fold_left ( +. ) 0.0 (part_bytes t)
let logical_bytes t = bytes t *. t.bmult

let repartition ~nparts ~key keyfn t =
  let parts = Array.make (max 1 nparts) [] in
  Array.iter
    (List.iter (fun v ->
         let i = abs (Value.hash (keyfn v)) mod Array.length parts in
         parts.(i) <- v :: parts.(i)))
    t.parts;
  { t with parts = Array.map List.rev parts; part_key = Some key }

let co_partitioned t key =
  match t.part_key with
  | Some k -> Plan.udf_alpha_equal k key
  | None -> false

let map_parts f t = { t with parts = Array.map f t.parts; part_key = None }
let map_parts_preserving f t = { t with parts = Array.map f t.parts }

let union a b =
  let n = max (nparts a) (nparts b) in
  let parts =
    Array.init n (fun i ->
        let pa = if i < nparts a then a.parts.(i) else [] in
        let pb = if i < nparts b then b.parts.(i) else [] in
        pa @ pb)
  in
  { parts;
    part_key = None;
    rmult = Float.max a.rmult b.rmult;
    bmult = Float.max a.bmult b.bmult }
