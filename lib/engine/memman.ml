(* Deterministic, coordinator-side memory accounting.

   All quantities are logical bytes (the same unit the cost model
   charges), and every decision is a pure function of the reservation
   sizes the engine presents in execution order — no wall clock, no
   domain count, no allocation measurement — so verdicts are
   bit-identical across hosts and domain counts. *)

type verdict =
  | Fits
  | Spill of { slots : int; bytes : float }
  | Kill of { attempts : int }
  | Fatal

type entry = { e_bytes : float; e_evict : unit -> unit; mutable e_stamp : int }

type t = {
  budget : float option;
  spill : bool;
  max_inflight : int option;
  headroom : int;
  capacity : float;
  mutable peak : float;
  (* LRU registry of Mem-cached bags *)
  mutable next_id : int;
  mutable clock : int;
  entries : (int, entry) Hashtbl.t;
  mutable cached : float;
  (* admission-control slots: busy-until times; [infinity] marks a slot
     held by a job still running *)
  mutable busy : float list;
}

let create ?budget ?(spill = false) ?max_inflight ~slots_per_node ~dop () =
  (match budget with
  | Some b when b <= 0.0 -> invalid_arg "Memman.create: budget must be positive"
  | _ -> ());
  (match max_inflight with
  | Some k when k < 1 -> invalid_arg "Memman.create: max_inflight must be >= 1"
  | _ -> ());
  {
    budget;
    spill;
    max_inflight;
    headroom = max 1 slots_per_node;
    capacity =
      (match budget with
      | None -> infinity
      | Some b -> b *. float_of_int (max 1 dop));
    peak = 0.0;
    next_id = 0;
    clock = 0;
    entries = Hashtbl.create 16;
    cached = 0.0;
    busy = [];
  }

let governed t = t.budget <> None
let peak t = t.peak
let budget t = match t.budget with Some b -> b | None -> infinity
let spill_enabled t = t.spill

(* Effective per-slot budget after [k] OOM kills: each retry halves the
   parallelism on the node, doubling the memory share of the surviving
   slots, up to the node's whole memory ([headroom] = slots per node). *)
let eff_mult t k = min (1 lsl k) t.headroom

let reserve t ~needs =
  let maxn = Array.fold_left Float.max 0.0 needs in
  if maxn > t.peak then t.peak <- maxn;
  match t.budget with
  | None -> Fits
  | Some b ->
      let slots = ref 0 and bytes = ref 0.0 in
      Array.iter
        (fun n ->
          if n > b then begin
            incr slots;
            bytes := !bytes +. (n -. b)
          end)
        needs;
      if !slots = 0 then Fits
      else if t.spill then Spill { slots = !slots; bytes = !bytes }
      else begin
        let k = ref 1 in
        while
          b *. float_of_int (eff_mult t !k) < maxn && eff_mult t !k < t.headroom
        do
          incr k
        done;
        if b *. float_of_int (eff_mult t !k) >= maxn then Kill { attempts = !k }
        else Fatal
      end

(* ---- LRU registry of Mem-cached bags ------------------------------ *)

type admission = { admitted : int option; evicted : float list }

let touch t id =
  match Hashtbl.find_opt t.entries id with
  | None -> ()
  | Some e ->
      t.clock <- t.clock + 1;
      e.e_stamp <- t.clock

let forget t id =
  match Hashtbl.find_opt t.entries id with
  | None -> ()
  | Some e ->
      Hashtbl.remove t.entries id;
      t.cached <- t.cached -. e.e_bytes

let lru t =
  Hashtbl.fold
    (fun id e acc ->
      match acc with
      | Some (_, best) when best.e_stamp <= e.e_stamp -> acc
      | _ -> Some (id, e))
    t.entries None

let register t ~bytes ~evict =
  if not (governed t) then { admitted = None; evicted = [] }
  else if bytes > t.capacity then { admitted = None; evicted = [] }
  else begin
    let evicted = ref [] in
    while t.cached +. bytes > t.capacity do
      match lru t with
      | None -> t.cached <- 0.0 (* defensive; cannot happen with bytes <= capacity *)
      | Some (id, e) ->
          Hashtbl.remove t.entries id;
          t.cached <- t.cached -. e.e_bytes;
          evicted := e.e_bytes :: !evicted;
          e.e_evict ()
    done;
    t.next_id <- t.next_id + 1;
    t.clock <- t.clock + 1;
    let id = t.next_id in
    Hashtbl.replace t.entries id { e_bytes = bytes; e_evict = evict; e_stamp = t.clock };
    t.cached <- t.cached +. bytes;
    { admitted = Some id; evicted = List.rev !evicted }
  end

let cached_bytes t = t.cached

(* ---- admission control -------------------------------------------- *)

let admit_job t ~now =
  match t.max_inflight with
  | None -> 0.0
  | Some k ->
      t.busy <- List.filter (fun u -> u > now) t.busy;
      if List.length t.busy < k then begin
        t.busy <- infinity :: t.busy;
        0.0
      end
      else begin
        (* all slots held; in the serial simulator held slots of finished
           jobs have finite release times — wait for the earliest one *)
        let m = List.fold_left Float.min infinity t.busy in
        let rec drop_one = function
          | [] -> []
          | u :: rest -> if u = m then rest else u :: drop_one rest
        in
        t.busy <- infinity :: drop_one t.busy;
        Float.max 0.0 (m -. now)
      end

let job_done t ~release =
  let rec replace = function
    | [] -> []
    | u :: rest -> if u = infinity then release :: rest else u :: replace rest
  in
  t.busy <- replace t.busy
