(** Partitioned distributed collections: the engine's runtime representation
    of a DataBag. Partition count equals the cluster DOP; [part_key] records
    an established hash partitioning (the plan property joins and
    aggregations test to skip shuffles).

    {b Logical scaling.} Experiments run the cost model at the paper's data
    volumes while materializing laptop-scale physical rows. Each collection
    carries two multipliers set by provenance: [rmult] (logical records per
    physical record) and [bmult] (logical bytes per physical byte). A
    [Read] of a scaled table introduces the cluster's scale; element-wise
    operators preserve it; aggregations collapse it — an [aggBy] output has
    one record per key whether the input was scaled or not, which is
    exactly why map-side combining wins. *)

module Value = Emma_value.Value
module Plan = Emma_dataflow.Plan

type t = {
  parts : Value.t list array;
  part_key : Plan.udf option;
      (** when set, every element [v] of partition [i] satisfies
          [hash (key v) mod nparts = i] for this key UDF *)
  rmult : float;  (** logical records per physical record *)
  bmult : float;  (** logical bytes per physical byte *)
}

val nparts : t -> int

val of_list :
  ?pool:Emma_util.Pool.t -> ?rmult:float -> ?bmult:float -> nparts:int -> Value.t list -> t
(** Round-robin partitioning (no key property); multipliers default to 1.
    With [pool], the per-partition slices are materialized in parallel on
    the domain pool — the layout is identical to the sequential path. *)

val init :
  ?pool:Emma_util.Pool.t ->
  ?rmult:float ->
  ?bmult:float ->
  nparts:int ->
  (int -> Value.t list) ->
  t
(** Builds partition [i] as [f i] (no key property). With [pool] the
    partition generators run in parallel on the domain pool — the hook
    workload generators use to materialize partitions concurrently. *)

val with_mult : rmult:float -> bmult:float -> t -> t

val to_list : t -> Value.t list
val records : t -> int
(** Physical record count. *)

val part_records : t -> int array
(** Physical record count per partition — the skew profile the engine's
    adaptive chunking sizes its chunks against. *)

val logical_records : t -> float
val bytes : t -> float
(** Physical bytes. *)

val logical_bytes : t -> float
val part_bytes : t -> float array

val repartition : nparts:int -> key:Plan.udf -> (Value.t -> Value.t) -> t -> t
(** Hash-partitions by the evaluated key and records the partitioning
    property; multipliers are preserved. *)

val co_partitioned : t -> Plan.udf -> bool
(** Whether the data is already hash-partitioned by an alpha-equal key. *)

val map_parts : (Value.t list -> Value.t list) -> t -> t
(** Narrow (partition-local) transformation; clears the key property,
    preserves multipliers. *)

val map_parts_preserving : (Value.t list -> Value.t list) -> t -> t
(** Narrow transformation that cannot change element identity w.r.t. the
    partitioning key (e.g. a filter); keeps the key property. *)

val union : t -> t -> t
(** Zips partitions pairwise; clears the key property; multipliers are the
    pairwise maxima. *)
