(** Cooperative cancellation tokens.

    A token is a one-way latch shared between a controller (a drain
    sequence, a serve watchdog, a caller that lost interest) and an
    engine run. {!Exec} polls the token at its cost-charging safepoints —
    the same choke points [timeout_s] uses: stage barriers,
    partition-task dispatch, and the recovery loop — and raises
    [Exec.Engine_cancelled] carrying the simulated clock and the request
    reason. Worker tasks are never preempted mid-task; cancellation lands
    at the next coordinator safepoint, which bounds the response time by
    one barrier.

    Tokens are safe to request from any domain. *)

type t

val create : unit -> t
(** A fresh, unrequested token. *)

val request : ?reason:string -> t -> unit
(** Latches the token (idempotent; the first reason wins). [reason]
    defaults to ["cancelled"]. *)

val is_requested : t -> bool

val reason : t -> string
(** The request reason; meaningful once {!is_requested} is true. *)
