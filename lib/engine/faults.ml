module Prng = Emma_util.Prng

type rates = {
  task_fail : float;
  executor_loss : float;
  fetch_fail : float;
  straggler : float;
  straggler_slowdown : float;
  loop_loss : float;
  oom_kill : float;
}

let zero_rates =
  { task_fail = 0.0;
    executor_loss = 0.0;
    fetch_fail = 0.0;
    straggler = 0.0;
    straggler_slowdown = 1.0;
    loop_loss = 0.0;
    oom_kill = 0.0 }

let default_rates =
  { task_fail = 0.05;
    executor_loss = 0.02;
    fetch_fail = 0.05;
    straggler = 0.05;
    straggler_slowdown = 4.0;
    loop_loss = 0.02;
    oom_kill = 0.02 }

let clamp01 x = Float.max 0.0 (Float.min 1.0 x)

let normalize r =
  { task_fail = clamp01 r.task_fail;
    executor_loss = clamp01 r.executor_loss;
    fetch_fail = clamp01 r.fetch_fail;
    straggler = clamp01 r.straggler;
    straggler_slowdown = Float.max 1.0 r.straggler_slowdown;
    loop_loss = clamp01 r.loop_loss;
    oom_kill = clamp01 r.oom_kill }

let rates_of_string s =
  let parse_kv acc kv =
    match acc with
    | Error _ -> acc
    | Ok r -> (
        match String.split_on_char '=' kv with
        | [ k; v ] -> (
            match float_of_string_opt (String.trim v) with
            | None -> Error (Printf.sprintf "chaos rates: bad number %S" v)
            | Some f -> (
                let key = String.trim k in
                let prob set =
                  if f < 0.0 || f > 1.0 then
                    Error
                      (Printf.sprintf
                         "chaos rates: %s=%g is out of range (probabilities \
                          must be in [0, 1])"
                         key f)
                  else Ok (set f)
                in
                match key with
                | "task" -> prob (fun f -> { r with task_fail = f })
                | "exec" -> prob (fun f -> { r with executor_loss = f })
                | "fetch" -> prob (fun f -> { r with fetch_fail = f })
                | "straggle" -> prob (fun f -> { r with straggler = f })
                | "slow" ->
                    if f < 1.0 then
                      Error
                        (Printf.sprintf
                           "chaos rates: slow=%g is out of range (the \
                            straggler slowdown must be >= 1)"
                           f)
                    else Ok { r with straggler_slowdown = f }
                | "loop" -> prob (fun f -> { r with loop_loss = f })
                | "oom" -> prob (fun f -> { r with oom_kill = f })
                | k -> Error (Printf.sprintf "chaos rates: unknown key %S" k)))
        | _ -> Error (Printf.sprintf "chaos rates: expected key=value, got %S" kv))
  in
  match
    List.fold_left parse_kv (Ok zero_rates)
      (List.filter (fun p -> String.trim p <> "") (String.split_on_char ',' s))
  with
  | Ok r -> Ok (normalize r)
  | Error _ as e -> e

type event =
  | Cache_loss of int
  | Task_fail of { barrier : int; part : int; attempts : int }
  | Exec_loss of { barrier : int; node : int }
  | Fetch_fail of { shuffle : int; part : int; times : int }
  | Straggle of { stage : int; part : int; slowdown : float }
  | Loop_loss of int
  | Oom_kill of int
  | Ckpt_corrupt of int

type t = { seed : int; rates : rates; script : event list }

let none = { seed = 0; rates = zero_rates; script = [] }

let is_none t =
  t.script = []
  && t.rates.task_fail = 0.0 && t.rates.executor_loss = 0.0
  && t.rates.fetch_fail = 0.0 && t.rates.straggler = 0.0
  && t.rates.loop_loss = 0.0 && t.rates.oom_kill = 0.0

let seeded ?(rates = default_rates) seed = { seed; rates = normalize rates; script = [] }
let scripted script = { none with script }
let of_cache_loss_at hits = scripted (List.map (fun k -> Cache_loss k) hits)
let add_events t events = { t with script = events @ t.script }

(* Injection-point tags keep the draw streams of different channels
   disjoint even when their sequence counters collide. *)
let tag_task = 1
let tag_exec = 2
let tag_exec_node = 3
let tag_fetch = 4
let tag_straggle = 5
let tag_loop = 6
let tag_oom = 7

let draw t ids = Prng.hash_unit ~seed:t.seed ids

let task_failures t ~barrier ~part ~cap =
  let scripted =
    List.fold_left
      (fun acc -> function
        | Task_fail f when f.barrier = barrier && f.part = part -> acc + f.attempts
        | _ -> acc)
      0 t.script
  in
  if scripted > 0 then scripted
  else if t.rates.task_fail <= 0.0 then 0
  else begin
    let n = ref 0 in
    while !n < cap && draw t [ tag_task; barrier; part; !n ] < t.rates.task_fail do
      incr n
    done;
    !n
  end

let executor_loss t ~barrier ~nodes =
  let scripted =
    List.find_map
      (function
        | Exec_loss e when e.barrier = barrier && e.node < nodes -> Some e.node
        | _ -> None)
      t.script
  in
  match scripted with
  | Some _ as s -> s
  | None ->
      if t.rates.executor_loss > 0.0 && nodes > 0
         && draw t [ tag_exec; barrier ] < t.rates.executor_loss
      then Some (Prng.hash_int ~seed:t.seed [ tag_exec_node; barrier ] nodes)
      else None

let fetch_failures t ~shuffle ~part =
  let scripted =
    List.fold_left
      (fun acc -> function
        | Fetch_fail f when f.shuffle = shuffle && f.part = part -> acc + f.times
        | _ -> acc)
      0 t.script
  in
  if scripted > 0 then scripted
  else if t.rates.fetch_fail > 0.0 && draw t [ tag_fetch; shuffle; part ] < t.rates.fetch_fail
  then 1
  else 0

let straggler t ~stage ~part =
  let scripted =
    List.find_map
      (function
        | Straggle s when s.stage = stage && s.part = part && s.slowdown > 1.0 ->
            Some s.slowdown
        | _ -> None)
      t.script
  in
  match scripted with
  | Some _ as s -> s
  | None ->
      if t.rates.straggler > 0.0 && t.rates.straggler_slowdown > 1.0
         && draw t [ tag_straggle; stage; part ] < t.rates.straggler
      then Some t.rates.straggler_slowdown
      else None

let cache_loss t ~hit =
  List.exists (function Cache_loss k -> k = hit | _ -> false) t.script

let loop_loss t ~boundary =
  List.exists (function Loop_loss k -> k = boundary | _ -> false) t.script
  || (t.rates.loop_loss > 0.0 && draw t [ tag_loop; boundary ] < t.rates.loop_loss)

let oom_kill t ~reservation =
  List.exists (function Oom_kill k -> k = reservation | _ -> false) t.script
  || (t.rates.oom_kill > 0.0
      && draw t [ tag_oom; reservation ] < t.rates.oom_kill)

let ckpt_corrupt t ~ckpt =
  List.exists (function Ckpt_corrupt k -> k = ckpt | _ -> false) t.script
