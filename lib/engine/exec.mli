(** The simulated distributed runtime: executes abstract dataflow plans over
    partitioned data and interprets compiled driver programs (thunks,
    broadcast variables, loops — the data-motion model of Fig. 3b).

    Semantics are exact — every operator computes the same bag the native
    {!Emma_lang.Eval} interpreter would — while costs are charged to a
    BSP-style model parameterized by {!Cluster.t} and an engine
    {!Cluster.profile}:

    {ul
    {- {b lineage}: binding a bag-valued dataflow is lazy; each consumer
       re-executes the plan (counted in [recomputes]) unless the plan was
       compiled with a [Cache] root, which materializes eagerly — in memory
       for Spark-like profiles, on the simulated DFS (paying I/O per reuse)
       for Flink-like ones;}
    {- {b joins} pick broadcast vs. repartition just-in-time from actual
       input sizes, and skip shuffles for co-partitioned inputs;}
    {- {b aggBy} performs map-side partial aggregation, shuffling one
       aggregate per key per partition, while [groupBy] shuffles everything
       and fails (Spark) or spills (Flink) when a single group exceeds the
       per-slot memory budget;}
    {- {b UDF captures} are shipped as broadcast variables, collecting
       distributed operands first.}} *)

module Value = Emma_value.Value
module Plan = Emma_dataflow.Plan
module Cprog = Emma_dataflow.Cprog
module Eval = Emma_lang.Eval

exception Engine_failure of string
(** Unrecoverable job failure (e.g. an oversized reduce group on a
    non-spilling engine). *)

exception Engine_timeout of float
(** Raised as soon as the simulated clock exceeds the configured timeout;
    carries the clock value. *)

exception Engine_cancelled of float * string
(** Cooperative cancellation: raised at the next safepoint after a
    {!Cancel} token is requested or the query's [deadline_s] budget is
    exhausted; carries the simulated clock and the cancellation reason.
    Safepoints are every cost charge and every partition-dispatch
    barrier — the same choke points [timeout_s] uses — so cancellation
    also lands mid-recovery and mid-admission-wait. When several limits
    trip on the same charge, [Engine_timeout] wins (the operator limit),
    then the deadline, then an external cancel request. The run's
    metrics record the event in [cancellations]. *)

type t
(** An engine instance: cluster + profile + metrics + table storage. *)

type udf_mode = Config.udf_mode =
  | Interp  (** tree-walk every UDF body per tuple with {!Emma_lang.Eval} *)
  | Compiled
      (** stage each UDF body once through {!Emma_lang.Compile} into a
          host closure (the default) *)

(** Chunk-size policy for the adaptive-chunking barriers. Operators that
    are order-preserving list homomorphisms (map, flatMap, filter, cross
    and broadcast-join probes, shuffle routing) split each partition into
    chunks of this many physical rows before dispatching to the
    work-stealing pool, so a skewed partition's tail can be stolen
    mid-partition; outputs are reassembled in order, keeping results and
    every cost-model metric bit-identical across policies. [Chunk_auto]
    (the default) sizes chunks from the cost model's per-row estimate with
    a granularity floor (each chunk carries at least a small fraction of
    one task-scheduling cost in per-row work, so cheap rows get coarse
    chunks);
    [Chunk_fixed k] pins k rows per chunk (the CLI's [--chunk N]).
    Non-homomorphic per-partition work (fold accumulators, groupBy/aggBy
    tables, sort-based distinct/minus, repartition-join builds) is never
    chunked — splitting a float fold would reassociate additions. *)
type chunk_spec = Config.chunk_spec = Chunk_auto | Chunk_fixed of int

val create :
  ?timeout_s:float ->
  ?cancel:Cancel.t ->
  ?config:Config.t ->
  ?udf_mode:udf_mode ->
  ?faults:Faults.t ->
  ?checkpoint_every:int ->
  ?mem_budget:float ->
  ?spill:bool ->
  ?max_inflight:int ->
  ?pool:Emma_util.Pool.t ->
  ?chunk:chunk_spec ->
  ?trace:Emma_util.Trace.t ->
  cluster:Cluster.t ->
  profile:Cluster.profile ->
  Eval.ctx ->
  t
(** The [Eval.ctx] provides the named input tables and receives written
    sinks, so engine runs and native runs are directly comparable.

    [config] carries every knob below in one record ({!Config.t}, default
    {!Config.default}); its [domains]/[plan_cache] fields are session
    concerns and ignored here, as are the serve-layer knobs
    [max_queue]/[breaker]/[drain_after_s]. The per-knob optional
    arguments are deprecated shims kept for one release: when passed they
    override the corresponding [config] field — [timeout_s] in
    particular falls back to [config.timeout_s] when the shim is absent.
    New code should build a [Config] and pass only [?config] (see the
    README migration guide).

    [cancel] is a cooperative {!Cancel} token: requesting it makes the
    run raise {!Engine_cancelled} at the next safepoint (every cost
    charge, every partition-dispatch barrier). [config.deadline_s] is
    checked at the same safepoints and raises the same exception once the
    run's own simulated time exceeds the budget.

    [udf_mode] (default [Compiled]) selects how worker-side UDF bodies
    execute. Both modes share the same cost charging and UDF tally, so
    results and every cost-model metric are bit-identical between them —
    only [wall_time_s] moves; the interpreter is retained as the
    differential-testing oracle.

    [faults] is a deterministic fault plan (default {!Faults.none}): it
    injects task-attempt failures, executor losses, shuffle-fetch
    failures, stragglers and driver-loop losses at seeded or scripted
    points, which the engine answers with retries, lineage recomputation,
    speculative copies, blacklisting and checkpoint restores (knobs in
    {!Cluster.recovery}). Results are bit-identical to the fault-free
    run; only the simulated clock and the recovery counters in
    {!Metrics} change. Recovery time is charged through the same clock
    the timeout watches, so [timeout_s] fires mid-recovery too.

    [checkpoint_every] (default off) checkpoints driver-loop state —
    assigned loop variables and stateful bags — every [k] completed
    iterations, priced as DFS I/O and counted in
    [checkpoints]/[checkpoint_bytes]; an injected loop loss then restarts
    from the last checkpoint instead of the loop entry. Each checkpoint
    record carries a CRC32 of a deterministic fingerprint of its state;
    on restore the engine verifies the checksum and a corrupted record
    (injected via {!Faults.Ckpt_corrupt}) is skipped — counted in
    [checkpoint_corruptions] — falling back to the previous good one,
    paying the DFS read for every record examined.

    [mem_budget] (logical bytes per slot, default unbounded) turns on
    deterministic memory governance ({!Memman}): every state-building
    operator — [groupBy]/[aggBy] hash tables, join build sides, fold
    partials, sort buffers — reserves its per-slot state size before
    running. Overflowing slots either spill to disk ([spill = true]:
    priced as DFS I/O in the dedicated [mem_spills]/[mem_spill_bytes]
    channels) or are OOM-killed and retried at halved parallelism
    ([spill = false]: counted in [oom_kills]; the job fails with
    [Engine_failure] once even one slot per node cannot hold the state).
    The budget also caps the [Mem]-cache: cached bags past
    [mem_budget × dop] total are LRU-evicted (counted in
    [cache_evictions]/[evicted_bytes]) and rebuilt through lineage on
    next use. Results are bit-identical to the unbounded run for any
    sufficient budget; only [sim_time_s] and the memory counters move.
    Without [mem_budget] the engine only tracks [mem_peak_bytes].

    [max_inflight] (>= 1, default unbounded) gates job admission: a
    submission past the in-flight budget waits for the earliest slot
    release (completion + per-job overhead), counted in
    [jobs_queued]/[queue_wait_s] and charged to the simulated clock.

    [pool] is the domain pool the multicore backend runs per-partition
    operator work on (default: {!Emma_util.Pool.default}). Shuffles, the
    driver, and all cost charging stay on the calling domain, so results
    and every cost-model metric — [sim_time_s], [shuffle_bytes], [stages],
    even [udf_invocations] — are bit-identical whatever the pool size;
    only [wall_time_s] and the [par_*] counters reflect the parallelism.

    [trace] is a span tracer (default: {!Emma_util.Trace.global}, i.e.
    disabled unless the CLI/bench installed one). When enabled the engine
    emits job spans around each submitted dataflow, stage spans per
    executed operator (tagged operator kind and output size), partition
    task spans on the worker domains (tagged partition index and domain
    id), and byte-motion counters. Tracing is pure observation: it is
    never consulted by cost charging, so every cost-model metric is
    bit-identical with tracing on or off. *)

val metrics : t -> Metrics.t

type dval =
  | Dscalar of Eval.rvalue
  | Dbag of handle  (** distributed bag (lazy lineage or materialized) *)
  | Dstateful of state_handle

and handle
and state_handle

val run : t -> Cprog.t -> Value.t
(** Executes a compiled driver program and returns its result value
    (distributed results are collected). Raises [Engine_failure] /
    [Engine_timeout]. *)

val force_bag : t -> handle -> Value.t list
(** Collects a distributed bag to the driver (charging the motion). *)

type trace_event = {
  ev_op : string;
  ev_records : float;  (** logical input records *)
  ev_bytes : float;  (** logical input bytes *)
  ev_clock : float;  (** simulated clock when the operator started *)
}

val trace : t -> trace_event list
(** Chronological record of the executed operators with their input sizes
    — the engine's observability hook (surfaced by the CLI's [--trace]). *)
