(* emma — command-line driver for the Emma reproduction.

     emma list                          enumerate built-in programs
     emma show kmeans                   print a program's Emma source
     emma compile q4 [--no-unnest ...]  compile and print plans + report
     emma run spam --engine flink       execute on the simulated engine
     emma native q1                     execute on the native DataBag

   Programs come with generated default workloads (see Registry). *)

open Cmdliner
module Pipeline = Emma_compiler.Pipeline

let program_arg =
  let doc = "Built-in program name (see $(b,emma list))." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)

let opts_term =
  let flag name doc = Arg.(value & flag & info [ name ] ~doc) in
  let mk no_unnest no_fuse no_cache no_partition no_inline =
    {
      Pipeline.inline = not no_inline;
      fuse = not no_fuse;
      unnest = not no_unnest;
      cache = not no_cache;
      partition = not no_partition;
    }
  in
  Term.(
    const mk
    $ flag "no-unnest" "Disable exists-unnesting (semi-join extraction)."
    $ flag "no-fusion" "Disable fold-group fusion."
    $ flag "no-cache" "Disable the caching heuristic."
    $ flag "no-partition" "Disable partition pulling."
    $ flag "no-inline" "Disable statement inlining.")

let engine_term =
  let doc = "Engine profile: $(b,spark) or $(b,flink)." in
  Arg.(value & opt (enum [ ("spark", `Spark); ("flink", `Flink) ]) `Spark & info [ "engine" ] ~doc)

let scale_term =
  let doc = "Logical data scale (logical bytes per physical byte)." in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~doc)

let dop_term =
  let doc = "Degree of parallelism of the simulated cluster." in
  Arg.(value & opt int 320 & info [ "dop" ] ~doc)

let domains_term =
  let doc =
    "Number of OCaml domains (OS-level cores) the engine runs partition work on. \
     1 executes sequentially; results and every cost-model metric are identical \
     for any value — only wall-clock time changes."
  in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)

let tables_dir_term =
  let doc = "Load input tables from CSV files in $(docv) instead of generating them." in
  Arg.(value & opt (some dir) None & info [ "tables" ] ~docv:"DIR" ~doc)

let load_tables (e : Registry.entry) = function
  | None -> e.Registry.tables ()
  | Some dir -> Emma_io.Csv.read_tables ~dir

let with_entry name f =
  match Registry.find name with
  | Some e -> f e
  | None ->
      Printf.eprintf "unknown program %S; try `emma list`\n" name;
      exit 1

(* ---- list ---- *)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Registry.entry) -> Printf.printf "%-10s %s\n" e.Registry.name e.Registry.describe)
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List built-in programs") Term.(const run $ const ())

(* ---- show ---- *)

let show_cmd =
  let run name =
    with_entry name (fun e ->
        print_endline (Emma.Pretty.program_to_string e.Registry.program))
  in
  Cmd.v (Cmd.info "show" ~doc:"Print a program's Emma source") Term.(const run $ program_arg)

(* ---- compile ---- *)

let compile_cmd =
  let run name opts dot =
    with_entry name (fun e ->
        let algo = Emma.parallelize ~opts e.Registry.program in
        if dot then
          Emma.Cprog.iter_plans
            (fun p -> print_endline (Emma.Plan.to_dot ~name:e.Registry.name p))
            algo.Emma.compiled
        else print_endline (Emma.Cprog.to_string algo.Emma.compiled);
        let r = algo.Emma.report in
        Printf.printf
          "\n\
           report: unnesting=%b fusion=%b (groups=%d folds=%d) caching=%b [%s] partition \
           pulling=%b [%s]\n"
          (Pipeline.applied_unnesting r)
          (Pipeline.applied_group_fusion r)
          r.Pipeline.fusion.Emma_compiler.Fusion.fused_groups
          r.Pipeline.fusion.Emma_compiler.Fusion.fused_folds
          (Pipeline.applied_caching r)
          (String.concat ", " r.Pipeline.cached_vars)
          (Pipeline.applied_partition_pulling r)
          (String.concat ", " r.Pipeline.partitioned_vars))
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a program and print its dataflows")
    Term.(
      const run $ program_arg $ opts_term
      $ Arg.(value & flag & info [ "dot" ] ~doc:"Emit GraphViz instead of plain text."))

(* ---- run ---- *)

let chaos_seed_term =
  let doc =
    "Inject deterministic faults drawn from this seed (task failures, executor \
     losses, shuffle-fetch failures, stragglers, driver-loop losses). The engine \
     recovers transparently: results are identical to the fault-free run, only \
     the simulated clock and the recovery counters change."
  in
  Arg.(value & opt (some int) None & info [ "chaos-seed" ] ~docv:"SEED" ~doc)

let chaos_rates_term =
  let doc =
    "Per-channel injection rates for $(b,--chaos-seed), e.g. \
     $(b,task=0.1,exec=0.02,fetch=0.05,straggle=0.1,slow=4,loop=0.02,oom=0.02). \
     Unlisted keys stay 0; without this flag a moderate default mix is used. \
     Probabilities outside [0, 1] (or $(b,slow) < 1) are rejected."
  in
  Arg.(value & opt (some string) None & info [ "chaos-rates" ] ~docv:"RATES" ~doc)

let checkpoint_term =
  let doc =
    "Checkpoint driver-loop state (loop variables and stateful bags) every \
     $(docv) iterations, so injected loop losses restart from the last \
     checkpoint instead of the loop entry. Each checkpoint record carries a \
     CRC32; corrupted records are detected and skipped on restore."
  in
  Arg.(value & opt (some int) None & info [ "checkpoint-every" ] ~docv:"K" ~doc)

let mem_per_slot_term =
  let doc =
    "Per-slot memory budget in logical bytes (e.g. $(b,64e6)). Overrides the \
     cluster's default and turns on memory governance: state-building operators \
     past the budget spill to disk (with $(b,--spill)) or are OOM-killed and \
     retried at halved parallelism; cached bags past budget×DOP are LRU-evicted. \
     Results are identical for any sufficient budget — only simulated time and \
     the memory counters move."
  in
  Arg.(value & opt (some float) None & info [ "mem-per-slot" ] ~docv:"BYTES" ~doc)

let spill_term =
  let doc =
    "With $(b,--mem-per-slot): spill overflowing operator state to disk \
     (priced as DFS I/O) instead of OOM-killing the attempt."
  in
  Arg.(value & flag & info [ "spill" ] ~doc)

let max_inflight_term =
  let doc =
    "Admission control: at most $(docv) jobs in flight; further submissions \
     queue for the earliest slot release (counted in jobs_queued/queue_wait_s)."
  in
  Arg.(value & opt (some int) None & info [ "max-inflight" ] ~docv:"N" ~doc)

let chunk_term =
  let doc =
    "Adaptive-chunking policy for partition tasks on the domain pool: \
     $(b,auto) (the default) sizes chunks from the cost model's per-row \
     estimate with a granularity floor; an integer $(docv) pins that many \
     physical rows per chunk. Chunking lets the work-stealing pool steal a \
     skewed partition's tail mid-partition; results and every cost-model \
     metric are identical for any policy — only wall-clock time and the \
     par_* counters move."
  in
  Arg.(value & opt string "auto" & info [ "chunk" ] ~docv:"auto|N" ~doc)

let udf_mode_term =
  let doc =
    "How per-tuple UDF bodies execute: $(b,compiled) stages each fused UDF \
     once into a host closure (the default); $(b,interp) tree-walks it with \
     the reference interpreter (the differential-testing oracle). Results \
     and all cost-model metrics are bit-identical between modes — only \
     wall-clock time moves."
  in
  Arg.(value & opt (some string) None & info [ "udf-mode" ] ~docv:"MODE" ~doc)

let timeout_term =
  let doc =
    "Operator limit on the simulated clock: a run past $(docv) seconds is \
     aborted with a classified TIMEOUT. Distinct from $(b,--deadline), which \
     is a per-query service budget. A value conflicting with the runtime's \
     own timeout is rejected at startup with exit 2."
  in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"S" ~doc)

let deadline_term =
  let doc =
    "Per-query latency budget in seconds on the simulated clock. A query \
     past its budget is cancelled cooperatively at the next engine safepoint \
     with a classified CANCELLED outcome; under $(b,emma serve) queries whose \
     queue wait already exceeds the budget are shed before dispatch (counted, \
     never silently dropped) and the degradation ladder engages under \
     backlog."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"S" ~doc)

let max_queue_term =
  let doc =
    "Bound each tenant's queue at $(docv) queries; arrivals past the bound \
     shed either themselves or the oldest queued query, picked \
     seed-deterministically so sim-mode replays stay bit-identical."
  in
  Arg.(value & opt (some int) None & info [ "max-queue" ] ~docv:"N" ~doc)

let breaker_term =
  let doc =
    "Per-tenant circuit breaker: $(b,K[:COOLDOWN_S]) opens a tenant's \
     circuit after K consecutive failed/timed-out/cancelled outcomes \
     (fast-failing its queue), half-opens after COOLDOWN_S simulated seconds \
     (default 30) and probes with a single query; $(b,off) disables."
  in
  Arg.(value & opt (some string) None & info [ "breaker" ] ~docv:"K[:CD]" ~doc)

let drain_after_term =
  let doc =
    "Graceful drain: stop admitting queries after $(docv) seconds (simulated \
     in sim mode, wall clock in real mode), shed later arrivals, and finish \
     or cancel in-flight work; the final report still accounts for every \
     submission."
  in
  Arg.(value & opt (some float) None & info [ "drain-after" ] ~docv:"S" ~doc)

(* Flag validation errors: one actionable line on stderr, exit 2 (the
   engine's own job-failure exit is also 2; both mean "this invocation
   cannot succeed as given"). *)
let usage_fail fmt =
  Printf.ksprintf
    (fun m ->
      Printf.eprintf "emma: %s\n" m;
      exit 2)
    fmt

(* The one shared flag-validation path (satellite of ISSUE 8): every
   run/bench/serve knob parses through Config.of_cli, which holds the
   one-line exit-2 messages. *)
let config_of_flags ?udf_mode ?chunk ?chaos_seed ?chaos_rates ?checkpoint_every
    ?mem_per_slot ?spill ?max_inflight ?domains ?plan_cache ?timeout ?deadline
    ?max_queue ?breaker ?drain_after ?wal ?wal_sync ?snapshot_every () =
  match
    Emma.Config.of_cli ?udf_mode ?chunk ?chaos_seed ?chaos_rates
      ?checkpoint_every ?mem_per_slot ?spill ?max_inflight ?domains ?plan_cache
      ?timeout ?deadline ?max_queue ?breaker ?drain_after ?wal ?wal_sync
      ?snapshot_every ()
  with
  | Ok c -> c
  | Error m -> usage_fail "%s" m

let run_cmd =
  let run name opts engine scale dop domains tables_dir trace_file ops_trace chaos_seed
      chaos_rates checkpoint_every mem_per_slot spill max_inflight udf_mode chunk
      timeout deadline =
    with_entry name (fun e ->
        let config =
          config_of_flags ?udf_mode ~chunk ?chaos_seed ?chaos_rates
            ?checkpoint_every ?mem_per_slot ~spill ?max_inflight ~domains
            ?timeout ?deadline ()
        in
        Emma_util.Pool.set_default_domains domains;
        (* Install the tracer before compiling so the compile-phase spans
           land in the same file as the execution spans. *)
        let tracer =
          match trace_file with
          | None -> Emma_util.Trace.disabled
          | Some _ ->
              let tr = Emma_util.Trace.create () in
              Emma_util.Trace.set_global tr;
              tr
        in
        let algo = Emma.parallelize ~opts e.Registry.program in
        let cluster =
          let c =
            Emma.Cluster.paper_cluster ~dop ~data_scale:scale
              ~table_scales:e.Registry.table_scales ()
          in
          match config.Emma.Config.mem_budget with
          | Some b -> Emma.Cluster.with_mem_per_slot c b
          | None -> c
        in
        let profile =
          match engine with
          | `Spark -> Emma_engine.Cluster.spark_like
          | `Flink -> Emma_engine.Cluster.flink_like
        in
        (* drive the engine directly so the execution trace is available *)
        let ctx = Emma.Eval.create_ctx () in
        List.iter (fun (n, rows) -> Emma.Eval.register_table ctx n rows)
          (load_tables e tables_dir);
        let eng =
          Emma.Engine.create ~timeout_s:(Option.value timeout ~default:3600.0)
            ~config:(Emma.Config.with_trace (Some tracer) config)
            ~cluster ~profile ctx
        in
        let print_ops_trace () =
          if ops_trace then begin
            print_endline "\ntrace (operator, logical records in, logical bytes in, clock):";
            List.iter
              (fun ev ->
                Printf.printf "  %8.1fs  %-10s %12.0f recs %14.0f B\n"
                  ev.Emma.Engine.ev_clock ev.Emma.Engine.ev_op ev.Emma.Engine.ev_records
                  ev.Emma.Engine.ev_bytes)
              (Emma.Engine.trace eng)
          end
        in
        (* compute the exit code first: [exit] does not unwind, so the
           trace file must be written before calling it *)
        let code =
          match Emma.Engine.run eng algo.Emma.compiled with
          | value ->
              Format.printf "result: %a@.@.%a@." Emma.Value.pp value Emma.Metrics.pp
                (Emma.Engine.metrics eng);
              print_ops_trace ();
              0
          | exception Emma.Engine.Engine_failure reason ->
              Format.printf "FAILED: %s@.@.%a@." reason Emma.Metrics.pp
                (Emma.Engine.metrics eng);
              print_ops_trace ();
              2
          | exception Emma.Engine.Engine_timeout at_s ->
              Format.printf "TIMEOUT at %.0f simulated s@.@.%a@." at_s Emma.Metrics.pp
                (Emma.Engine.metrics eng);
              print_ops_trace ();
              3
          | exception Emma.Engine.Engine_cancelled (at_s, reason) ->
              Format.printf "CANCELLED at %.0f simulated s (%s)@.@.%a@." at_s
                reason Emma.Metrics.pp
                (Emma.Engine.metrics eng);
              print_ops_trace ();
              3
        in
        (match trace_file with
        | Some path ->
            Emma_util.Trace.write_chrome_json tracer path;
            Printf.eprintf "trace written to %s (load in chrome://tracing)\n" path
        | None -> ());
        if code <> 0 then exit code)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a program on the simulated distributed engine")
    Term.(
      const run $ program_arg $ opts_term $ engine_term $ scale_term $ dop_term
      $ domains_term $ tables_dir_term
      $ Arg.(
          value
          & opt (some string) None
          & info [ "trace" ] ~docv:"FILE.json"
              ~doc:
                "Write a Chrome trace_event JSON file with compile-phase, job, stage \
                 and partition-task spans (open in chrome://tracing or ui.perfetto.dev).")
      $ Arg.(
          value & flag
          & info [ "ops-trace" ] ~doc:"Print the per-operator execution trace.")
      $ chaos_seed_term $ chaos_rates_term $ checkpoint_term $ mem_per_slot_term
      $ spill_term $ max_inflight_term $ udf_mode_term $ chunk_term
      $ timeout_term $ deadline_term)

(* ---- explain ---- *)

let explain_cmd =
  let run name opts =
    with_entry name (fun e ->
        print_string (Emma.Explain.to_string (Emma.Explain.run ~opts e.Registry.program)))
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Show what the optimizer did: phase-by-phase plan diff, node counts, and which \
          optimizations fired. Deterministic — suitable for golden files.")
    Term.(const run $ program_arg $ opts_term)

(* ---- typecheck ---- *)

let typecheck_cmd =
  let run name =
    with_entry name (fun e ->
        let schemas =
          List.map
            (fun (t, rows) -> (t, Emma_types.Infer.schema_of_rows rows))
            (e.Registry.tables ())
        in
        match Emma_types.Infer.check_program ~schemas e.Registry.program with
        | Ok t -> Printf.printf "well-typed; result: %s\n" (Emma_types.Infer.ty_to_string t)
        | Error m ->
            Printf.printf "type error: %s\n" m;
            exit 1)
  in
  Cmd.v
    (Cmd.info "typecheck" ~doc:"Infer the program's types against its default schemas")
    Term.(const run $ program_arg)

(* ---- gen ---- *)

let gen_cmd =
  let run name dir =
    with_entry name (fun e ->
        let tables = e.Registry.tables () in
        Emma_io.Csv.write_tables ~dir tables;
        List.iter
          (fun (t, rows) -> Printf.printf "wrote %s/%s.csv (%d rows)\n" dir t (List.length rows))
          tables)
  in
  let dir_arg =
    Arg.(required & opt (some string) None & info [ "out" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a program's default workload as CSV files")
    Term.(const run $ program_arg $ dir_arg)

(* ---- serve ---- *)

module Serve = Emma_serve.Serve
module Arrival = Emma_serve.Arrival

(* "acme:2,beta" -> [tenant acme (weight 2); tenant beta (weight 1)] *)
let parse_tenants s =
  String.split_on_char ',' s
  |> List.filter (fun w -> String.trim w <> "")
  |> List.map (fun spec ->
         match String.split_on_char ':' (String.trim spec) with
         | [ name ] -> Serve.tenant name
         | [ name; w ] -> (
             match int_of_string_opt w with
             | Some weight when weight >= 1 -> Serve.tenant ~weight name
             | _ ->
                 usage_fail
                   "--tenants: %S is invalid: expected `name' or `name:weight' \
                    with weight >= 1"
                   spec)
         | _ ->
             usage_fail
               "--tenants: %S is invalid: expected `name' or `name:weight'" spec)

let serve_cmd =
  let run tenants_s queries_s n_events seed rate alpha arrivals_file mode engine
      scale dop domains plan_cache udf_mode chunk chaos_seed chaos_rates
      checkpoint_every mem_per_slot spill max_inflight timeout deadline
      max_queue breaker drain_after counters_json wal recover wal_sync
      snapshot_every wal_crash fingerprint_file =
    let tenants = parse_tenants tenants_s in
    if tenants = [] then usage_fail "--tenants: at least one tenant is required";
    let queries =
      String.split_on_char ',' queries_s
      |> List.map String.trim
      |> List.filter (fun w -> w <> "")
    in
    if queries = [] then usage_fail "--queries: at least one query is required";
    let entries =
      List.map
        (fun q ->
          match Registry.find q with
          | Some e -> e
          | None -> usage_fail "--queries: unknown program %S; try `emma list'" q)
        queries
    in
    if n_events < 1 then
      usage_fail "--events %d is invalid: need at least 1 arrival" n_events;
    if not (rate > 0.0) then
      usage_fail "--rate %g is invalid: the arrival rate must be > 0" rate;
    if not (alpha > 0.0) then
      usage_fail "--zipf %g is invalid: the Zipf exponent must be > 0" alpha;
    (match (wal, recover) with
    | Some _, Some _ ->
        usage_fail
          "--recover DIR already names the journal directory; drop --wal"
    | _ -> ());
    let recovering = recover <> None in
    let wal = match recover with Some _ as r -> r | None -> wal in
    let config =
      config_of_flags ?udf_mode ~chunk ?chaos_seed ?chaos_rates
        ?checkpoint_every ?mem_per_slot ~spill ?max_inflight ~domains
        ~plan_cache ?timeout ?deadline ?max_queue ?breaker ?drain_after ?wal
        ?wal_sync ?snapshot_every ()
    in
    if config.Emma.Config.wal_dir <> None && mode = `Real then
      usage_fail
        "--wal/--recover requires --mode sim: the journal records the \
         deterministic simulation, which real mode cannot replay";
    let wal_crash =
      match wal_crash with
      | None -> None
      | Some _ when config.Emma.Config.wal_dir = None ->
          usage_fail "--wal-crash has no effect without --wal DIR"
      | Some s -> (
          match Emma_util.Wal.crash_spec_of_string s with
          | Ok spec -> Some spec
          | Error m -> usage_fail "--wal-crash: %s" m)
    in
    let events =
      match arrivals_file with
      | Some path -> (
          let contents =
            try In_channel.with_open_text path In_channel.input_all
            with Sys_error m -> usage_fail "--arrivals: %s" m
          in
          match Arrival.of_string contents with
          | Ok evs -> evs
          | Error m -> usage_fail "--arrivals: %s" m)
      | None ->
          Arrival.generate ~seed ~rate ~alpha
            ~tenants:(List.map (fun t -> t.Serve.tn_name) tenants)
            ~queries ~n:n_events
    in
    let workload =
      List.map
        (fun (e : Registry.entry) ->
          (e.Registry.name, (e.Registry.program, e.Registry.tables ())))
        entries
    in
    let table_scales =
      List.concat_map (fun (e : Registry.entry) -> e.Registry.table_scales)
        entries
      |> List.sort_uniq compare
    in
    let cluster =
      Emma.Cluster.paper_cluster ~dop ~data_scale:scale ~table_scales ()
    in
    let profile =
      match engine with
      | `Spark -> Emma_engine.Cluster.spark_like
      | `Flink -> Emma_engine.Cluster.flink_like
    in
    let rt = { Emma.cluster; profile; timeout_s = Some 3600.0 } in
    let session =
      (* Session.create rejects conflicting runtime/config timeouts with
         Invalid_argument — surfaced as the same one-line exit-2 error as
         any other flag-validation failure *)
      try Emma.Session.create ~config rt
      with Invalid_argument m -> usage_fail "%s" m
    in
    let counters =
      Fun.protect
        ~finally:(fun () -> Emma.Session.close session)
        (fun () ->
          try
            match mode with
            | `Sim -> (
                match config.Emma.Config.wal_dir with
                | None -> Serve.run_sim session tenants workload events
                | Some dir ->
                    let journal =
                      Emma_util.Wal.create ~sync:config.Emma.Config.wal_sync
                        ~dir ()
                    in
                    Option.iter (Emma_util.Wal.set_crash journal) wal_crash;
                    let durability =
                      {
                        Serve.du_wal = journal;
                        du_snapshot_every = config.Emma.Config.snapshot_every;
                      }
                    in
                    Fun.protect
                      ~finally:(fun () -> Emma_util.Wal.close journal)
                      (fun () ->
                        if recovering then
                          Serve.recover_sim ~durability session tenants
                            workload events
                        else
                          Serve.run_sim ~durability session tenants workload
                            events))
            | `Real ->
                (* real mode: --drain-after is wall clock — a timer domain
                   pulls the plug, shedding un-admitted queries and
                   cancelling in-flight ones at their next safepoint. The
                   timer polls a stop flag so a run that finishes early
                   never waits out the full drain interval. *)
                let dctl = Serve.drain_controller () in
                let stop = Atomic.make false in
                let timer =
                  Option.map
                    (fun s ->
                      Domain.spawn (fun () ->
                          let rec wait remaining =
                            if (not (Atomic.get stop)) && remaining > 0.0
                            then begin
                              let step = Float.min 0.05 remaining in
                              Unix.sleepf step;
                              wait (remaining -. step)
                            end
                          in
                          wait s;
                          if not (Atomic.get stop) then Serve.drain dctl))
                    config.Emma.Config.drain_after_s
                in
                Fun.protect
                  ~finally:(fun () ->
                    Atomic.set stop true;
                    Option.iter Domain.join timer)
                  (fun () ->
                    Serve.run_concurrent ~drain:dctl session tenants workload
                      events)
          with
          | Invalid_argument m -> usage_fail "%s" m
          | Serve.Recovery_error m -> usage_fail "%s" m
          | Sys_error m -> usage_fail "%s" m)
    in
    (match fingerprint_file with
    | Some path ->
        Emma_util.Wal.write_atomic path (Serve.fingerprint counters ^ "\n")
    | None -> ());
    let lat = Serve.latencies counters in
    let n = List.length counters.Serve.sv_results in
    Printf.printf "served %d queries over %d tenants (%s mode, %d lanes)\n" n
      (List.length tenants)
      (match mode with `Sim -> "sim" | `Real -> "real")
      counters.Serve.sv_lanes;
    (match counters.Serve.sv_cache with
    | Some s ->
        Printf.printf "plan cache: %d hits, %d misses, %d evictions (%d live)\n"
          s.Emma.Plan_cache.hits s.Emma.Plan_cache.misses
          s.Emma.Plan_cache.evictions s.Emma.Plan_cache.entries
    | None -> Printf.printf "plan cache: off\n");
    Printf.printf "latency p50 %.6f s, p99 %.6f s, makespan %.6f s\n"
      (Serve.percentile lat 0.50) (Serve.percentile lat 0.99)
      counters.Serve.sv_makespan_s;
    (if counters.Serve.sv_makespan_s > 0.0 then
       Printf.printf "sustained %.2f queries/s (%s)\n"
         (float_of_int n
         /.
         match mode with
         | `Sim -> counters.Serve.sv_makespan_s
         | `Real -> counters.Serve.sv_wall_s)
         (match mode with `Sim -> "simulated" | `Real -> "wall clock"));
    List.iter
      (fun tc ->
        Printf.printf
          "  tenant %-10s weight %d: %d admitted, %d shed, max queue %d, \
           breaker opens %d, wait %.6f s\n"
          tc.Serve.tc_name tc.Serve.tc_weight tc.Serve.tc_admissions
          tc.Serve.tc_shed tc.Serve.tc_max_queue tc.Serve.tc_breaker_opens
          tc.Serve.tc_queue_wait_s)
      counters.Serve.sv_tenants;
    (let nshed = List.length counters.Serve.sv_shed in
     if nshed > 0 then begin
       let by reason =
         List.length
           (List.filter
              (fun s -> s.Serve.sh_reason = reason)
              counters.Serve.sv_shed)
       in
       Printf.printf
         "shed %d queries (deadline %d, queue_full %d, breaker %d, drain %d, \
          degraded %d)\n"
         nshed (by Serve.Shed_deadline) (by Serve.Shed_queue_full)
         (by Serve.Shed_breaker) (by Serve.Shed_drain) (by Serve.Shed_degraded)
     end);
    if counters.Serve.sv_degraded > 0 then
      Printf.printf "%d queries ran degraded\n" counters.Serve.sv_degraded;
    if counters.Serve.sv_breaker_opens > 0 then
      Printf.printf "breaker: %d opens, %d half-opens, %d closes\n"
        counters.Serve.sv_breaker_opens counters.Serve.sv_breaker_half_opens
        counters.Serve.sv_breaker_closes;
    if
      counters.Serve.sv_failed > 0
      || counters.Serve.sv_timed_out > 0
      || counters.Serve.sv_cancelled > 0
    then
      Printf.printf "%d failed, %d timed out, %d cancelled\n"
        counters.Serve.sv_failed counters.Serve.sv_timed_out
        counters.Serve.sv_cancelled;
    (match counters_json with
    | Some path ->
        (* temp-then-rename: a crash mid-write never leaves a torn report *)
        Emma_util.Wal.write_atomic path
          (Emma.Json.to_string (Serve.counters_to_json counters));
        Printf.eprintf "counters written to %s\n" path
    | None -> ());
    if counters.Serve.sv_failed > 0 then exit 2
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a multi-tenant arrival trace of built-in programs on one \
          shared session: fair-share (deficit round-robin) admission across \
          tenants, per-tenant memory budgets, and a plan cache keyed on the \
          normalized plan + schema. $(b,--mode sim) replays deterministically \
          on the simulated clock; $(b,--mode real) runs one domain per tenant \
          lane over the shared work-stealing pool.")
    Term.(
      const run
      $ Arg.(
          value & opt string "acme:2,beta"
          & info [ "tenants" ] ~docv:"NAME[:W],..."
              ~doc:"Comma-separated tenants with optional fair-share weights.")
      $ Arg.(
          value & opt string "q1,q3,wordcount,group-min"
          & info [ "queries" ] ~docv:"NAMES"
              ~doc:"Comma-separated built-in programs the trace draws from.")
      $ Arg.(
          value & opt int 60
          & info [ "events" ] ~docv:"N" ~doc:"Arrivals to generate.")
      $ Arg.(
          value & opt int 7
          & info [ "seed" ] ~docv:"SEED" ~doc:"Trace-generation seed.")
      $ Arg.(
          value & opt float 2.0
          & info [ "rate" ] ~docv:"QPS"
              ~doc:"Mean arrival rate (exponential inter-arrival gaps).")
      $ Arg.(
          value & opt float 1.1
          & info [ "zipf" ] ~docv:"ALPHA"
              ~doc:
                "Zipf exponent of tenant and query popularity (bigger = more \
                 repeat-heavy).")
      $ Arg.(
          value & opt (some string) None
          & info [ "arrivals" ] ~docv:"FILE"
              ~doc:
                "Replay a scripted arrival trace (`<at_s> <tenant> <query>' \
                 per line) instead of generating one.")
      $ Arg.(
          value
          & opt (enum [ ("sim", `Sim); ("real", `Real) ]) `Sim
          & info [ "mode" ] ~docv:"sim|real"
              ~doc:
                "$(b,sim): deterministic discrete-event replay (bit-identical \
                 counters); $(b,real): one domain per tenant lane, wall-clock \
                 throughput.")
      $ engine_term $ scale_term $ dop_term $ domains_term
      $ Arg.(
          value & opt string "64"
          & info [ "plan-cache" ] ~docv:"N|off"
              ~doc:
                "Plan-cache capacity (LRU over normalized-plan+schema keys); \
                 $(b,off) disables caching.")
      $ udf_mode_term $ chunk_term $ chaos_seed_term $ chaos_rates_term
      $ checkpoint_term $ mem_per_slot_term $ spill_term $ max_inflight_term
      $ timeout_term $ deadline_term $ max_queue_term $ breaker_term
      $ drain_after_term
      $ Arg.(
          value & opt (some string) None
          & info [ "counters-json" ] ~docv:"FILE"
              ~doc:"Write the machine-readable serve counters to $(docv).")
      $ Arg.(
          value & opt (some string) None
          & info [ "wal" ] ~docv:"DIR"
              ~doc:
                "Journal every scheduling decision to a durable write-ahead \
                 log in $(docv) (sim mode only). A killed run restarts with \
                 $(b,--recover) $(docv).")
      $ Arg.(
          value & opt (some string) None
          & info [ "recover" ] ~docv:"DIR"
              ~doc:
                "Recover a journaled run from $(docv): journaled outcomes \
                 are replayed without re-execution, admitted-but-unfinished \
                 queries are re-submitted idempotently, and the counters are \
                 bit-identical to an uninterrupted run. Implies $(b,--wal) \
                 $(docv); pass the original run's flags and trace.")
      $ Arg.(
          value & opt (some string) None
          & info [ "wal-sync" ] ~docv:"none|batch:N|always"
              ~doc:
                "Journal fsync policy (default $(b,none)): $(b,none) flushes \
                 to the OS per append, $(b,batch:N) fsyncs every N appends, \
                 $(b,always) fsyncs per append.")
      $ Arg.(
          value & opt (some int) None
          & info [ "snapshot-every" ] ~docv:"K"
              ~doc:
                "Write a compacting state snapshot every $(docv) outcomes, \
                 bounding recovery replay time; old segments fully covered \
                 by the snapshot are deleted.")
      $ Arg.(
          value & opt (some string) None
          & info [ "wal-crash" ] ~docv:"N[:K]"
              ~doc:
                "Deterministic crash injection (testing): SIGKILL this \
                 process after the $(docv)th journal append — or, with \
                 $(b,:K), write only the first K bytes of that append's \
                 frame first (a torn write).")
      $ Arg.(
          value & opt (some string) None
          & info [ "fingerprint" ] ~docv:"FILE"
              ~doc:
                "Write the replay fingerprint of the run to $(docv) \
                 (atomically), for crash-recovery comparison.") )

(* ---- native ---- *)

let native_cmd =
  let run name tables_dir =
    with_entry name (fun e ->
        let algo = Emma.parallelize e.Registry.program in
        let value, _ = Emma.run_native algo ~tables:(load_tables e tables_dir) in
        Format.printf "result: %a@." Emma.Value.pp value)
  in
  Cmd.v
    (Cmd.info "native" ~doc:"Run a program natively on the host-language DataBag")
    Term.(const run $ program_arg $ tables_dir_term)

let () =
  let info = Cmd.info "emma" ~doc:"Emma: implicit parallelism through deep language embedding" in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; show_cmd; compile_cmd; explain_cmd; run_cmd; serve_cmd; native_cmd;
            gen_cmd; typecheck_cmd ]))
