(* udf-smoke: the staged-UDF-compilation gate of `make check`.

   Runs TPC-H Q1 and Q3 from the registry twice each — once with the
   interpreter (`--udf-mode interp`, the differential oracle) and once
   with the staged compiler (`--udf-mode compiled`, the default) — and
   asserts the compilation contract: bit-identical results and
   bit-identical cost-model metrics (simulated time, shuffle/broadcast
   bytes, stages, jobs, UDF invocations). Only wall clock may differ.
   Any violation exits non-zero and fails the alias. *)

module Value = Emma.Value
module Metrics = Emma.Metrics
module Engine = Emma.Engine

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("udf-smoke: " ^ m); exit 1) fmt

(* the cost-model metrics a UDF-mode switch could plausibly disturb;
   wall clock deliberately excluded *)
let cost_sig (m : Metrics.t) =
  ( ( m.Metrics.sim_time_s,
      m.Metrics.shuffle_bytes,
      m.Metrics.broadcast_bytes,
      m.Metrics.dfs_read_bytes,
      m.Metrics.dfs_write_bytes,
      m.Metrics.collect_bytes,
      m.Metrics.parallelize_bytes,
      m.Metrics.spilled_bytes ),
    ( m.Metrics.stages,
      m.Metrics.jobs,
      m.Metrics.par_stages,
      m.Metrics.par_tasks,
      m.Metrics.udf_invocations,
      m.Metrics.cache_hits ) )

let check name =
  match Registry.find name with
  | None -> fail "unknown registry program %S" name
  | Some e ->
      let algo = Emma.parallelize e.Registry.program in
      let tables = e.Registry.tables () in
      let rt =
        Emma.spark
          ~cluster:
            (Emma.Cluster.paper_cluster ~table_scales:e.Registry.table_scales ())
          ~timeout_s:3600.0 ()
      in
      let interp = Emma.run_on_exn ~udf_mode:Engine.Interp rt algo ~tables in
      let compiled = Emma.run_on_exn ~udf_mode:Engine.Compiled rt algo ~tables in
      if not (Value.equal interp.Emma.value compiled.Emma.value) then
        fail "%s: compiled result differs from the interpreter oracle" name;
      if cost_sig interp.Emma.metrics <> cost_sig compiled.Emma.metrics then
        fail "%s: cost-model metrics differ between UDF modes" name;
      Printf.printf
        "udf-smoke %-4s ok: values equal, cost metrics bit-identical (%d UDF \
         invocations, %d stages)\n"
        name compiled.Emma.metrics.Metrics.udf_invocations
        compiled.Emma.metrics.Metrics.stages

let () = List.iter check [ "q1"; "q3" ]
