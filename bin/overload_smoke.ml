(* overload-smoke: the robustness gate of `make check`.

   Two deterministic scenarios over Emma_serve:

   1. A Zipf burst trace (40 arrivals at 8/s over two tenants and three
      registry programs) under a tight end-to-end deadline and the
      degradation ladder. Asserts the overload contract: a nonzero
      number of queries is shed, every submission is accounted
      (finished/failed/timed-out/cancelled/shed — nothing is silently
      dropped), and the sim replay fingerprint is bit-identical across
      replays and across 2- and 8-domain pools.

   2. A per-tenant circuit-breaker cycle: a tenant whose grouping query
      OOM-fails under its memory budget trips the breaker after two
      consecutive failures (open), fast-fails the next queued query,
      then half-opens after the cool-down and closes on a successful
      probe. Asserts one full open -> half-open -> close cycle.

   Any violation exits non-zero and fails the alias. *)

module S = Emma_lang.Surface
module Value = Emma.Value
module Metrics = Emma.Metrics
module Config = Emma.Config
module Pool = Emma_util.Pool
module Serve = Emma_serve.Serve
module Arrival = Emma_serve.Arrival

let fail fmt =
  Printf.ksprintf (fun m -> prerr_endline ("overload-smoke: " ^ m); exit 1) fmt

(* ---- scenario 1: burst trace, tight deadlines, ladder ---- *)

let query_names = [ "q1"; "wordcount"; "group-min" ]
let tenants = [ Serve.tenant ~weight:2 "acme"; Serve.tenant "beta" ]

let entry name =
  match Registry.find name with
  | Some e -> e
  | None -> fail "unknown registry program %S" name

let workload =
  List.map
    (fun n -> let e = entry n in (n, (e.Registry.program, e.Registry.tables ())))
    query_names

let rt =
  let table_scales =
    List.sort_uniq compare
      (List.concat_map (fun n -> (entry n).Registry.table_scales) query_names)
  in
  Emma.spark ~cluster:(Emma.Cluster.paper_cluster ~table_scales ()) ~timeout_s:3600.0 ()

let events =
  Arrival.generate ~seed:31 ~rate:8.0 ~alpha:1.1
    ~tenants:(List.map (fun t -> t.Serve.tn_name) tenants)
    ~queries:query_names ~n:40

let run_policy ?pool policy =
  let config =
    let c = Config.with_plan_cache (Some 8) Config.default in
    match pool with None -> c | Some p -> Config.with_pool (Some p) c
  in
  let session = Emma.Session.create ~config rt in
  Fun.protect ~finally:(fun () -> Emma.Session.close session) @@ fun () ->
  Serve.run_sim ~policy session tenants workload events

let accounted (c : Serve.counters) =
  List.length c.Serve.sv_results + List.length c.Serve.sv_shed

let burst () =
  (* price the trace policy-off, then set the budget to twice the mean
     service time: early/cached queries fit, the backlog sheds *)
  let base = run_policy Serve.no_policy in
  if accounted base <> List.length events then
    fail "policy-off run lost a submission (%d/%d)" (accounted base)
      (List.length events);
  let lat = Serve.latencies base in
  let mean =
    Array.fold_left ( +. ) 0.0 lat /. float (max 1 (Array.length lat))
  in
  let policy =
    { Serve.no_policy with
      Serve.pl_deadline_s = Some (0.25 *. mean);
      pl_degrade_depth = Some 4 }
  in
  let c = run_policy policy in
  if accounted c <> List.length events then
    fail "a submission went missing under load shedding (%d/%d)" (accounted c)
      (List.length events);
  if c.Serve.sv_shed = [] then fail "the burst trace shed nothing";
  if c.Serve.sv_results = [] then fail "the burst trace admitted nothing";
  let finished =
    List.filter
      (fun (r : Serve.query_result) ->
        match r.Serve.qr_outcome with Emma.Finished _ -> true | _ -> false)
      c.Serve.sv_results
  in
  if finished = [] then fail "no query finished under the deadline";
  (* replay and pool-size invariance *)
  let fp = Serve.fingerprint c in
  if Serve.fingerprint (run_policy policy) <> fp then
    fail "burst fingerprint moved between identical replays";
  List.iter
    (fun domains ->
      let pool = Pool.create ~domains () in
      Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
      if Serve.fingerprint (run_policy ~pool policy) <> fp then
        fail "burst fingerprint moved at %d domains" domains)
    [ 2; 8 ];
  Printf.printf
    "burst: %d arrivals -> %d admitted (%d finished), %d shed; fingerprint \
     stable at 2 and 8 domains\n"
    (List.length events)
    (List.length c.Serve.sv_results)
    (List.length finished)
    (List.length c.Serve.sv_shed)

(* ---- scenario 2: breaker open / half-open / close cycle ---- *)

let rows n =
  List.init n (fun i ->
      Value.record [ ("a", Value.Int i); ("b", Value.Int (i mod 5)) ])

let group_prog =
  S.program
    ~ret:S.(count (var "d"))
    [ S.s_let "d"
        S.(
          for_
            [ gen "g" (group_by (lam "x" (fun x -> field x "b")) (read "rows")) ]
            ~yield:
              (record
                 [ ( "a",
                     sum
                       (map (lam "x" (fun x -> field x "a")) (field (var "g") "values"))
                   );
                   ("b", field (var "g") "key") ])) ]

let count_prog = S.program ~ret:S.(count (read "rows")) []

let breaker_cycle () =
  let rt = Emma.spark ~timeout_s:3600.0 () in
  let tables = [ ("rows", rows 200) ] in
  let peak =
    (Emma.run_on_exn rt (Emma.parallelize group_prog) ~tables).Emma.metrics
      .Metrics.mem_peak_bytes
  in
  let wl = [ ("group", (group_prog, tables)); ("count", (count_prog, tables)) ] in
  let tenants = [ Serve.tenant ~mem_budget:(0.4 *. peak) "hot"; Serve.tenant "cold" ] in
  let policy =
    { Serve.no_policy with
      Serve.pl_breaker = Some { Config.br_threshold = 2; br_cooldown_s = 1.0 } }
  in
  let events =
    [ { Arrival.at_s = 0.0; tenant = "hot"; query = "group" };
      { Arrival.at_s = 0.0; tenant = "hot"; query = "group" };
      { Arrival.at_s = 0.0; tenant = "hot"; query = "group" };
      { Arrival.at_s = 1e6; tenant = "hot"; query = "count" } ]
  in
  let config =
    Config.default
    |> Config.with_max_inflight (Some 1)
    |> Config.with_plan_cache (Some 8)
  in
  let session = Emma.Session.create ~config rt in
  let c =
    Fun.protect ~finally:(fun () -> Emma.Session.close session) @@ fun () ->
    Serve.run_sim ~policy session tenants wl events
  in
  if accounted c <> List.length events then
    fail "breaker scenario lost a submission";
  if c.Serve.sv_breaker_opens < 1 then fail "the circuit never opened";
  if c.Serve.sv_breaker_half_opens < 1 then fail "the circuit never half-opened";
  if c.Serve.sv_breaker_closes < 1 then fail "the probe never closed the circuit";
  let breaker_sheds =
    List.filter
      (fun (sh : Serve.shed_record) -> sh.Serve.sh_reason = Serve.Shed_breaker)
      c.Serve.sv_shed
  in
  if breaker_sheds = [] then fail "the open circuit fast-failed nothing";
  Printf.printf
    "breaker: open=%d half_open=%d close=%d, %d fast-failed while open\n"
    c.Serve.sv_breaker_opens c.Serve.sv_breaker_half_opens
    c.Serve.sv_breaker_closes
    (List.length breaker_sheds)

let () =
  burst ();
  breaker_cycle ();
  print_endline "overload-smoke: ok"
