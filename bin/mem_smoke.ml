(* mem-smoke: the memory-governance gate of `make check`.

   Runs TPC-H Q1 and k-means from the registry twice each — unbounded,
   then under a comically tiny per-slot budget with spilling on — and
   asserts the governance contract: the governed run actually spills
   (spill counters > 0), pays for it in simulated time, and still
   produces a bit-identical result. Any violation exits non-zero and
   fails the alias. *)

module Value = Emma.Value
module Metrics = Emma.Metrics

let tiny_budget = 64.0 (* logical bytes per slot *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("mem-smoke: " ^ m); exit 1) fmt

let check name =
  match Registry.find name with
  | None -> fail "unknown registry program %S" name
  | Some e ->
      let algo = Emma.parallelize e.Registry.program in
      let tables = e.Registry.tables () in
      let rt =
        Emma.spark
          ~cluster:
            (Emma.Cluster.paper_cluster ~table_scales:e.Registry.table_scales ())
          ~timeout_s:3600.0 ()
      in
      let unbounded = Emma.run_on_exn rt algo ~tables in
      let governed =
        Emma.run_on_exn ~mem_budget:tiny_budget ~spill:true rt algo ~tables
      in
      if not (Value.equal unbounded.Emma.value governed.Emma.value) then
        fail "%s: governed result differs from the unbounded run" name;
      let m = governed.Emma.metrics in
      if m.Metrics.mem_spills = 0 then
        fail "%s: no spills under a %.0f-byte budget (peak %.0f B)" name tiny_budget
          m.Metrics.mem_peak_bytes;
      if m.Metrics.sim_time_s < unbounded.Emma.metrics.Metrics.sim_time_s then
        fail "%s: spilling made the run cheaper" name;
      Printf.printf
        "mem-smoke %-8s ok: %d spills, %.0f B spilled, %.1f s vs %.1f s unbounded\n"
        name m.Metrics.mem_spills m.Metrics.mem_spill_bytes m.Metrics.sim_time_s
        unbounded.Emma.metrics.Metrics.sim_time_s

let () = List.iter check [ "q1"; "kmeans" ]
