(* serve-smoke: the service-layer gate of `make check`.

   Replays one seeded Zipf arrival trace over two tenants and three
   registry programs through `Emma_serve` and asserts the service
   contract end to end:

   - the sim-mode replay fingerprint is bit-identical across two runs
     (deterministic fair-share scheduling, queues, cache counters);
   - the plan cache hits on repeat submissions and never changes a
     result: every query's value matches the cache-off replay and a
     standalone [Emma.run_on_exn] of the same program;
   - every outcome carries per-query metrics with the cache counters
     stamped in ([plan_cache_hits + plan_cache_misses >= 1] on a cached
     session);
   - the real-concurrency mode (one domain per tenant over the shared
     pool) finishes every query with the same values.

   Any violation exits non-zero and fails the alias. *)

module Value = Emma.Value
module Metrics = Emma.Metrics
module Serve = Emma_serve.Serve
module Arrival = Emma_serve.Arrival

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("serve-smoke: " ^ m); exit 1) fmt

let query_names = [ "q1"; "wordcount"; "group-min" ]
let tenants = [ Serve.tenant ~weight:2 "acme"; Serve.tenant "beta" ]

let entry name =
  match Registry.find name with
  | Some e -> e
  | None -> fail "unknown registry program %S" name

let workload =
  List.map (fun n -> let e = entry n in (n, (e.Registry.program, e.Registry.tables ()))) query_names

let rt =
  let table_scales =
    List.sort_uniq compare
      (List.concat_map (fun n -> (entry n).Registry.table_scales) query_names)
  in
  Emma.spark ~cluster:(Emma.Cluster.paper_cluster ~table_scales ()) ~timeout_s:3600.0 ()

let events =
  Arrival.generate ~seed:23 ~rate:2.0 ~alpha:1.1
    ~tenants:(List.map (fun t -> t.Serve.tn_name) tenants)
    ~queries:query_names ~n:30

let run_sim plan_cache =
  let config = Emma.Config.with_plan_cache plan_cache Emma.Config.default in
  let session = Emma.Session.create ~config rt in
  Fun.protect ~finally:(fun () -> Emma.Session.close session) @@ fun () ->
  Serve.run_sim session tenants workload events

let value_of (r : Serve.query_result) =
  match r.Serve.qr_outcome with
  | Emma.Finished { value; _ } -> value
  | Emma.Failed { reason; _ } -> fail "sub %d (%s) failed: %s" r.Serve.qr_sub r.Serve.qr_query reason
  | Emma.Timed_out _ -> fail "sub %d (%s) timed out" r.Serve.qr_sub r.Serve.qr_query
  | Emma.Cancelled _ -> fail "sub %d (%s) cancelled" r.Serve.qr_sub r.Serve.qr_query

let run_concurrent () =
  let config = Emma.Config.with_plan_cache (Some 8) Emma.Config.default in
  let session = Emma.Session.create ~config rt in
  Fun.protect ~finally:(fun () -> Emma.Session.close session) @@ fun () ->
  Serve.run_concurrent session tenants workload events

let () =
  let on = run_sim (Some 8) in
  let on2 = run_sim (Some 8) in
  if Serve.fingerprint on <> Serve.fingerprint on2 then
    fail "sim replay fingerprint moved between identical runs";
  let hits, misses =
    match on.Serve.sv_cache with
    | Some s -> Emma.Plan_cache.(s.hits, s.misses)
    | None -> fail "cached session reports no plan-cache stats"
  in
  if hits = 0 then fail "no plan-cache hits on a repeat-heavy trace";
  if misses <> List.length query_names then
    fail "expected %d cold compiles, saw %d" (List.length query_names) misses;
  List.iter
    (fun (r : Serve.query_result) ->
      let m = Emma.metrics_of_outcome r.Serve.qr_outcome in
      if m.Metrics.plan_cache_hits + m.Metrics.plan_cache_misses < 1 then
        fail "sub %d carries no cache counters in its metrics" r.Serve.qr_sub)
    on.Serve.sv_results;
  (* cache never changes a result: vs cache-off and vs standalone run_on *)
  let off = run_sim None in
  List.iter2
    (fun a b ->
      if not (Value.equal (value_of a) (value_of b)) then
        fail "sub %d: cached value differs from cache-off replay" a.Serve.qr_sub)
    on.Serve.sv_results off.Serve.sv_results;
  List.iter
    (fun name ->
      let prog, tables = List.assoc name workload in
      let standalone = Emma.run_on_exn rt (Emma.parallelize prog) ~tables in
      let served =
        List.find (fun (r : Serve.query_result) -> r.Serve.qr_query = name)
          on.Serve.sv_results
      in
      if not (Value.equal standalone.Emma.value (value_of served)) then
        fail "%s: served value differs from standalone run_on" name;
      let sm = Emma.metrics_of_outcome served.Serve.qr_outcome in
      if sm.Metrics.sim_time_s <> standalone.Emma.metrics.Metrics.sim_time_s then
        fail "%s: served sim_time_s differs from standalone run_on" name)
    query_names;
  (* real concurrency: everything finishes with the same values *)
  let real = run_concurrent () in
  List.iter2
    (fun a b ->
      if not (Value.equal (value_of a) (value_of b)) then
        fail "sub %d: concurrent value differs from sim replay" a.Serve.qr_sub)
    on.Serve.sv_results real.Serve.sv_results;
  Printf.printf
    "serve-smoke ok: %d queries, %d lanes, %d hits/%d misses, fingerprint stable, \
     values identical across sim/off/concurrent/standalone\n"
    (List.length on.Serve.sv_results) on.Serve.sv_lanes hits misses
