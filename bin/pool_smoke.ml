(* pool-smoke gate: a short scheduling stress of the work-stealing pool at
   8 (oversubscribed) domains. Exercises the three properties the tier-1
   adversarial suite checks at length — nested-parmap deadlock freedom,
   deterministic lowest-index exception choice, and wakeup correctness
   over many tiny batches — plus a differential pass against the retained
   legacy single-queue pool. Any mismatch, unexpected exception, or hang
   (the alias runs under dune's timeout-free build, so a deadlock shows up
   as a wedged CI step) exits non-zero and fails `make pool-smoke`. *)

module Pool = Emma_util.Pool
module Pool_legacy = Emma_util.Pool_legacy

exception Boom of int

let failures = ref 0

let check name ok =
  if ok then Printf.printf "ok   %s\n%!" name
  else begin
    incr failures;
    Printf.printf "FAIL %s\n%!" name
  end

let ints n = Array.init n Fun.id

let spin k =
  for _ = 1 to k * 40 do
    ignore (Sys.opaque_identity k)
  done

(* nested trees: every level fans out through the same pool *)
let rec tree_sum p depth width =
  if depth = 0 then 1
  else
    Array.fold_left ( + ) 0
      (Pool.parmap p (fun i -> spin i; tree_sum p (depth - 1) width) (ints width))

let rec pow b e = if e = 0 then 1 else b * pow b (e - 1)

let () =
  let p = Pool.create ~domains:8 () in
  let legacy = Pool_legacy.create ~domains:8 in
  Fun.protect ~finally:(fun () ->
      Pool.shutdown p;
      Pool_legacy.shutdown legacy)
  @@ fun () ->
  (* 1. nested parmap trees must terminate with the exact leaf count *)
  check "nested trees (depth 4, width 3)" (tree_sum p 4 3 = pow 3 4);
  check "nested trees (depth 2, width 8)" (tree_sum p 2 8 = pow 8 2);

  (* 2. 1000 tiny batches: wakeup/sleep churn, sizes 0-3 *)
  let tiny_ok = ref true in
  for round = 1 to 1000 do
    let n = round mod 4 in
    if Pool.parmap p (fun i -> i + round) (ints n)
       <> Array.map (fun i -> i + round) (ints n)
    then tiny_ok := false
  done;
  check "1000 tiny batches" !tiny_ok;

  (* 3. exception storm: random failure sets, lowest index must win and
     the pool must stay usable between storms *)
  let storm_ok = ref true in
  for round = 1 to 50 do
    let n = 16 + (round mod 17) in
    let f i = if (i + round) mod 5 = 0 then (spin i; raise (Boom i)) else i in
    let lowest =
      let rec go i = if (i + round) mod 5 = 0 then i else go (i + 1) in
      go 0
    in
    (match Pool.parmap p f (ints n) with
    | _ -> if lowest < n then storm_ok := false
    | exception Boom i -> if i <> lowest then storm_ok := false);
    if Pool.parmap p succ (ints 8) <> Array.map succ (ints 8) then storm_ok := false
  done;
  check "exception storm: lowest index, pool reusable" !storm_ok;

  (* 4. differential vs the legacy single-queue pool *)
  let diff_ok = ref true in
  for round = 1 to 20 do
    let n = 1 + (round * 7 mod 40) in
    let f i = if round mod 4 = 0 && i = n / 2 then raise (Boom i) else (i * i) + round in
    let run map = match map f (ints n) with
      | rs -> `Ok (Array.to_list rs)
      | exception Boom i -> `Boom i
    in
    if run (Pool_legacy.parmap legacy) <> run (Pool.parmap p) then diff_ok := false
  done;
  check "work-stealing ≡ legacy pool" !diff_ok;

  let s = Pool.stats p in
  Printf.printf "stats: %d tasks run, %d steals, %d steal misses\n" s.Pool.tasks_run
    s.Pool.steals s.Pool.steal_misses;
  if !failures > 0 then begin
    Printf.printf "pool-smoke: %d FAILURE(S)\n" !failures;
    exit 1
  end;
  print_endline "pool-smoke: all checks passed"
