(* Built-in example programs with default workloads, shared by the CLI. *)

module W = Emma_workloads
module Pr = Emma_programs
module Value = Emma.Value

type entry = {
  name : string;
  describe : string;
  program : Emma.Expr.program;
  tables : unit -> (string * Value.t list) list;
  table_scales : (string * float) list;
}

let kmeans =
  let cfg = W.Points_gen.default ~n_points:2_000 ~k:3 in
  {
    name = "kmeans";
    describe = "Lloyd's k-means clustering (paper Listing 4)";
    program = Pr.Kmeans.program Pr.Kmeans.default_params;
    tables =
      (fun () ->
        [ ("points", W.Points_gen.points ~seed:1 cfg);
          ("centroids0", W.Points_gen.initial_centroids ~seed:1 cfg) ]);
    table_scales = [ ("centroids0", 1.0) ];
  }

let pagerank =
  let cfg = W.Graph_gen.default ~n_vertices:500 in
  {
    name = "pagerank";
    describe = "PageRank over a StatefulBag (paper Listing 6)";
    program = Pr.Pagerank.program (Pr.Pagerank.default_params ~n_pages:500);
    tables = (fun () -> [ ("vertices", W.Graph_gen.adjacency ~seed:1 cfg) ]);
    table_scales = [];
  }

let connected_components =
  let cfg = W.Graph_gen.default ~n_vertices:500 in
  {
    name = "cc";
    describe = "Connected Components, semi-naive (paper Listing 7)";
    program = Pr.Connected_components.program Pr.Connected_components.default_params;
    tables = (fun () -> [ ("vertices", W.Graph_gen.undirected_adjacency ~seed:1 cfg) ]);
    table_scales = [];
  }

let spam =
  let cfg =
    { (W.Email_gen.paper_config ~physical_emails:400) with
      body_bytes_avg = 10_000;
      server_info_bytes = 2_000 }
  in
  {
    name = "spam";
    describe = "Spam-classifier selection workflow (paper Listing 5)";
    program = Pr.Spam_workflow.program Pr.Spam_workflow.default_params;
    tables =
      (fun () ->
        [ ("emails_raw", W.Email_gen.emails ~seed:1 cfg);
          ("blacklist_raw", W.Email_gen.blacklist ~seed:1 cfg) ]);
    table_scales = [];
  }

let tpch_tables () =
  let cfg = W.Tpch_gen.of_scale_factor 0.001 in
  [ ("lineitem", W.Tpch_gen.lineitem ~seed:1 cfg);
    ("orders", W.Tpch_gen.orders ~seed:1 cfg);
    ("customer", W.Tpch_gen.customer ~seed:1 cfg) ]

let q1 =
  {
    name = "q1";
    describe = "TPC-H Query 1 (paper Listing 8)";
    program = Pr.Tpch_q1.program Pr.Tpch_q1.default_params;
    tables = tpch_tables;
    table_scales = [];
  }

let q3 =
  {
    name = "q3";
    describe = "TPC-H Query 3: three-way join (extension)";
    program = Pr.Tpch_q3.program Pr.Tpch_q3.default_params;
    tables = tpch_tables;
    table_scales = [];
  }

let q4 =
  {
    name = "q4";
    describe = "TPC-H Query 4 (paper Listing 9)";
    program = Pr.Tpch_q4.program Pr.Tpch_q4.default_params;
    tables = tpch_tables;
    table_scales = [];
  }

let group_min =
  let cfg = W.Keyed_gen.paper_config ~n_tuples:10_000 (W.Keyed_gen.pareto ~n_keys:100) in
  {
    name = "group-min";
    describe = "Group aggregation under key skew (paper Appendix B)";
    program = Pr.Group_min.program Pr.Group_min.default_params;
    tables = (fun () -> [ ("dataset", W.Keyed_gen.tuples ~seed:1 cfg) ]);
    table_scales = [];
  }

let wordcount =
  let texts =
    [ "to be or not to be"; "that is the question"; "to parallelize or not";
      "the question is implicit" ]
  in
  {
    name = "wordcount";
    describe = "Word count: the MapReduce classic as an Emma comprehension";
    program = Pr.Wordcount.program Pr.Wordcount.default_params;
    tables = (fun () -> [ ("docs", Pr.Wordcount.docs_of_strings texts) ]);
    table_scales = [];
  }

let all = [ wordcount; kmeans; pagerank; connected_components; spam; q1; q3; q4; group_min ]

let find name = List.find_opt (fun e -> String.equal e.name name) all
