(* Crash-recovery smoke for the serve write-ahead journal.

   Out-of-process by necessity: --wal-crash SIGKILLs the serving process
   mid-append, so each scenario spawns the real `emma serve` binary, lets
   it die, then restarts it with --recover and asserts the recovered
   run's replay fingerprint is byte-identical to an uninterrupted run of
   the same trace — and that the recovered journal converged to the
   uninterrupted journal byte-for-byte (so repeated crashes compose).

   Scenarios: clean-kill crashes at several append indices, a torn write
   (first K bytes of a frame only), a crash with snapshots enabled (so
   recovery starts from a snapshot, not t=0), and a double crash (the
   recovery run is itself killed and recovered). *)

let cli =
  Filename.concat (Filename.dirname Sys.executable_name) "emma_cli.exe"

let base_flags = "--events 20 --deadline 30 --max-queue 4"

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun m ->
      incr failures;
      Printf.printf "FAIL %s\n" m)
    fmt

let ok fmt = Printf.ksprintf (fun m -> Printf.printf "ok   %s\n" m) fmt

let read_file path = In_channel.with_open_bin path In_channel.input_all

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "emma-crash-smoke-%d-%d" (Unix.getpid ()) !counter)
    in
    if Sys.file_exists d then rm_rf d;
    d

let run_cli args =
  Sys.command (Printf.sprintf "%s serve %s %s >/dev/null 2>&1" cli base_flags args)

(* Concatenated journal contents in segment order: the convergence
   identity (recovered journal = uninterrupted journal) must hold no
   matter how records are split across segment files. *)
let journal_bytes dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".seg")
  |> List.sort compare
  |> List.map (fun f -> read_file (Filename.concat dir f))
  |> String.concat ""

let () =
  (* reference: one uninterrupted journaled run *)
  let ref_dir = fresh_dir () in
  let ref_fp = Filename.temp_file "emma-crash-smoke" ".fp" in
  let rc =
    run_cli (Printf.sprintf "--wal %s --fingerprint %s" ref_dir ref_fp)
  in
  if rc <> 0 then begin
    Printf.printf "FAIL reference run exited %d\n" rc;
    exit 1
  end;
  let reference = read_file ref_fp in
  let ref_journal = journal_bytes ref_dir in
  ok "reference run journaled (%d journal bytes)" (String.length ref_journal);

  let recover_and_check ~label ?(extra = "") dir =
    let fp = Filename.temp_file "emma-crash-smoke" ".fp" in
    let rc =
      run_cli (Printf.sprintf "--recover %s --fingerprint %s %s" dir fp extra)
    in
    if rc <> 0 then fail "%s: recover exited %d" label rc
    else if read_file fp <> reference then
      fail "%s: recovered fingerprint differs from uninterrupted run" label
    else if journal_bytes dir <> ref_journal then
      fail "%s: recovered journal did not converge byte-for-byte" label
    else ok "%s: fingerprint and journal byte-identical after recovery" label;
    Sys.remove fp
  in

  let crash ~label ?(extra = "") spec =
    let dir = fresh_dir () in
    let rc = run_cli (Printf.sprintf "--wal %s --wal-crash %s %s" dir spec extra) in
    (* sh reports a SIGKILLed child as 128+9 *)
    if rc = 0 then fail "%s: --wal-crash %s did not kill the run" label spec
    else recover_and_check ~label ~extra dir;
    rm_rf dir
  in

  (* clean kills after the Nth append: preamble, early, mid, late *)
  List.iter
    (fun n -> crash ~label:(Printf.sprintf "kill after append %d" n)
        (string_of_int n))
    [ 1; 7; 19; 33; 46 ];

  (* torn write: only the first 5 bytes of append 25's frame hit disk *)
  crash ~label:"torn write at append 25" "25:5";

  (* snapshot-based recovery: crash late enough that a snapshot exists *)
  crash ~label:"kill at 45 with snapshots" ~extra:"--snapshot-every 4" "45";

  (* double crash: the recovery run is itself killed, then recovered *)
  let dir = fresh_dir () in
  let rc = run_cli (Printf.sprintf "--wal %s --wal-crash 20" dir) in
  if rc = 0 then fail "double crash: first kill did not fire"
  else begin
    let rc2 = run_cli (Printf.sprintf "--recover %s --wal-crash 10" dir) in
    if rc2 = 0 then fail "double crash: second kill did not fire"
    else recover_and_check ~label:"double crash" dir
  end;
  rm_rf dir;
  rm_rf ref_dir;
  Sys.remove ref_fp;

  if !failures > 0 then begin
    Printf.printf "crash-smoke: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "crash-smoke: all scenarios recovered bit-identically"
